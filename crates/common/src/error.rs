//! Errno-shaped error type shared across the RPC boundary.
//!
//! GekkoFS forwards file-system operations to remote daemons; whatever
//! error the daemon produces must survive serialization and come back
//! out as something a POSIX-shaped client layer can translate into an
//! `errno`. We therefore keep the error enum small, flat, and encodable
//! as a single `u32`.

use std::fmt;

/// Result alias used across all gkfs crates.
pub type Result<T> = std::result::Result<T, GkfsError>;

/// File-system level errors. The discriminants map 1:1 onto wire codes
/// (and from there onto errnos in `gkfs-posix`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GkfsError {
    /// Entry does not exist (`ENOENT`).
    NotFound,
    /// Entry already exists (`EEXIST`).
    Exists,
    /// Operation on a directory where a file was expected (`EISDIR`).
    IsDirectory,
    /// Operation on a file where a directory was expected (`ENOTDIR`).
    NotDirectory,
    /// Directory not empty on removal (`ENOTEMPTY`).
    NotEmpty,
    /// Invalid argument (`EINVAL`).
    InvalidArgument(String),
    /// Bad file descriptor (`EBADF`).
    BadFileDescriptor,
    /// Operation deliberately unsupported by GekkoFS' relaxed POSIX
    /// semantics — rename, hard/symlinks, locking (`ENOTSUP`).
    Unsupported(&'static str),
    /// Local storage failure underneath a daemon (`EIO`).
    Io(String),
    /// RPC transport failure: unreachable daemon, connection reset,
    /// malformed frame (`EHOSTUNREACH`-ish).
    Rpc(String),
    /// KV store corruption detected (checksum mismatch, truncated
    /// record) (`EIO`).
    Corruption(String),
    /// Daemon is shutting down and refuses new work (`ESHUTDOWN`).
    ShuttingDown,
    /// Request timed out waiting for a daemon (`ETIMEDOUT`).
    Timeout,
    /// Daemon is (temporarily) unreachable and its circuit breaker is
    /// open: the client fails fast instead of burning its deadline on
    /// a node known to be down (`EHOSTDOWN`).
    Unavailable(String),
}

impl GkfsError {
    /// Stable wire code for RPC responses.
    pub fn code(&self) -> u32 {
        match self {
            GkfsError::NotFound => 1,
            GkfsError::Exists => 2,
            GkfsError::IsDirectory => 3,
            GkfsError::NotDirectory => 4,
            GkfsError::NotEmpty => 5,
            GkfsError::InvalidArgument(_) => 6,
            GkfsError::BadFileDescriptor => 7,
            GkfsError::Unsupported(_) => 8,
            GkfsError::Io(_) => 9,
            GkfsError::Rpc(_) => 10,
            GkfsError::Corruption(_) => 11,
            GkfsError::ShuttingDown => 12,
            GkfsError::Timeout => 13,
            GkfsError::Unavailable(_) => 14,
        }
    }

    /// Whether a *failed attempt* with this error may be retried at
    /// the transport level.
    ///
    /// Retryable errors are the ones that say nothing about the state
    /// of the namespace: the daemon was unreachable ([`Rpc`]), did not
    /// answer in time ([`Timeout`]), or the bytes in flight were
    /// damaged ([`Corruption`] — a CRC-failed frame kills the
    /// connection, never the stored data, and attempts are bounded so
    /// a daemon-side corruption still surfaces after the budget).
    /// Application errors (`NotFound`, `Exists`, …) mean a healthy
    /// daemon answered and a retry would return the same answer;
    /// [`ShuttingDown`] is a deliberate refusal; [`Unavailable`] is
    /// the retry layer's own fail-fast verdict. Whether a retry is
    /// *semantically* safe (idempotency) is the caller's decision —
    /// see DESIGN.md "Fault model".
    ///
    /// [`Rpc`]: GkfsError::Rpc
    /// [`Timeout`]: GkfsError::Timeout
    /// [`Corruption`]: GkfsError::Corruption
    /// [`ShuttingDown`]: GkfsError::ShuttingDown
    /// [`Unavailable`]: GkfsError::Unavailable
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            GkfsError::Rpc(_) | GkfsError::Timeout | GkfsError::Corruption(_)
        )
    }

    /// Reconstruct an error from a wire code plus optional detail text.
    pub fn from_code(code: u32, detail: &str) -> GkfsError {
        match code {
            1 => GkfsError::NotFound,
            2 => GkfsError::Exists,
            3 => GkfsError::IsDirectory,
            4 => GkfsError::NotDirectory,
            5 => GkfsError::NotEmpty,
            6 => GkfsError::InvalidArgument(detail.to_string()),
            7 => GkfsError::BadFileDescriptor,
            8 => GkfsError::Unsupported("remote"),
            9 => GkfsError::Io(detail.to_string()),
            10 => GkfsError::Rpc(detail.to_string()),
            11 => GkfsError::Corruption(detail.to_string()),
            12 => GkfsError::ShuttingDown,
            13 => GkfsError::Timeout,
            14 => GkfsError::Unavailable(detail.to_string()),
            other => GkfsError::Rpc(format!("unknown error code {other}: {detail}")),
        }
    }

    /// Human-readable detail payload carried over the wire (may be empty).
    pub fn detail(&self) -> &str {
        match self {
            GkfsError::InvalidArgument(s)
            | GkfsError::Io(s)
            | GkfsError::Rpc(s)
            | GkfsError::Corruption(s)
            | GkfsError::Unavailable(s) => s,
            GkfsError::Unsupported(s) => s,
            _ => "",
        }
    }

    /// POSIX errno equivalent, for the preload-style C ABI.
    pub fn errno(&self) -> i32 {
        match self {
            GkfsError::NotFound => 2,            // ENOENT
            GkfsError::Exists => 17,             // EEXIST
            GkfsError::IsDirectory => 21,        // EISDIR
            GkfsError::NotDirectory => 20,       // ENOTDIR
            GkfsError::NotEmpty => 39,           // ENOTEMPTY
            GkfsError::InvalidArgument(_) => 22, // EINVAL
            GkfsError::BadFileDescriptor => 9,   // EBADF
            GkfsError::Unsupported(_) => 95,     // EOPNOTSUPP
            GkfsError::Io(_) => 5,               // EIO
            GkfsError::Rpc(_) => 113,            // EHOSTUNREACH
            GkfsError::Corruption(_) => 5,       // EIO
            GkfsError::ShuttingDown => 108,      // ESHUTDOWN
            GkfsError::Timeout => 110,           // ETIMEDOUT
            GkfsError::Unavailable(_) => 112,    // EHOSTDOWN
        }
    }
}

impl fmt::Display for GkfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GkfsError::NotFound => write!(f, "no such file or directory"),
            GkfsError::Exists => write!(f, "file exists"),
            GkfsError::IsDirectory => write!(f, "is a directory"),
            GkfsError::NotDirectory => write!(f, "not a directory"),
            GkfsError::NotEmpty => write!(f, "directory not empty"),
            GkfsError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            GkfsError::BadFileDescriptor => write!(f, "bad file descriptor"),
            GkfsError::Unsupported(s) => write!(f, "operation not supported by GekkoFS: {s}"),
            GkfsError::Io(s) => write!(f, "I/O error: {s}"),
            GkfsError::Rpc(s) => write!(f, "RPC error: {s}"),
            GkfsError::Corruption(s) => write!(f, "corruption: {s}"),
            GkfsError::ShuttingDown => write!(f, "daemon shutting down"),
            GkfsError::Timeout => write!(f, "request timed out"),
            GkfsError::Unavailable(s) => write!(f, "daemon unavailable: {s}"),
        }
    }
}

impl std::error::Error for GkfsError {}

impl From<std::io::Error> for GkfsError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::NotFound => GkfsError::NotFound,
            std::io::ErrorKind::AlreadyExists => GkfsError::Exists,
            std::io::ErrorKind::TimedOut => GkfsError::Timeout,
            _ => GkfsError::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        let all = vec![
            GkfsError::NotFound,
            GkfsError::Exists,
            GkfsError::IsDirectory,
            GkfsError::NotDirectory,
            GkfsError::NotEmpty,
            GkfsError::InvalidArgument("x".into()),
            GkfsError::BadFileDescriptor,
            GkfsError::Unsupported("remote"),
            GkfsError::Io("disk".into()),
            GkfsError::Rpc("net".into()),
            GkfsError::Corruption("crc".into()),
            GkfsError::ShuttingDown,
            GkfsError::Timeout,
            GkfsError::Unavailable("node 3 breaker open".into()),
        ];
        for e in all {
            let back = GkfsError::from_code(e.code(), e.detail());
            assert_eq!(e, back, "roundtrip of {e:?}");
        }
    }

    #[test]
    fn unknown_code_maps_to_rpc_error() {
        match GkfsError::from_code(9999, "boom") {
            GkfsError::Rpc(s) => assert!(s.contains("9999") && s.contains("boom")),
            other => panic!("expected Rpc, got {other:?}"),
        }
    }

    #[test]
    fn errnos_are_posix_values() {
        assert_eq!(GkfsError::NotFound.errno(), 2);
        assert_eq!(GkfsError::Exists.errno(), 17);
        assert_eq!(GkfsError::BadFileDescriptor.errno(), 9);
        assert_eq!(GkfsError::Timeout.errno(), 110);
    }

    #[test]
    fn retryable_classification() {
        assert!(GkfsError::Rpc("reset".into()).is_retryable());
        assert!(GkfsError::Timeout.is_retryable());
        assert!(GkfsError::Corruption("crc".into()).is_retryable());
        for e in [
            GkfsError::NotFound,
            GkfsError::Exists,
            GkfsError::NotEmpty,
            GkfsError::InvalidArgument("x".into()),
            GkfsError::ShuttingDown,
            GkfsError::Unavailable("open".into()),
            GkfsError::Io("disk".into()),
        ] {
            assert!(!e.is_retryable(), "{e:?} must not be retryable");
        }
    }

    #[test]
    fn io_error_conversion() {
        let nf = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert_eq!(GkfsError::from(nf), GkfsError::NotFound);
        let other = std::io::Error::other("weird");
        assert!(matches!(GkfsError::from(other), GkfsError::Io(_)));
    }
}
