//! File-system object types: metadata records, open flags, directory
//! entries.
//!
//! GekkoFS stores one metadata record per file-system object in the
//! responsible daemon's KV store. The record is deliberately small —
//! the paper's relaxed POSIX model drops ownership/permissions (the
//! node-local FS enforces those) and link counts (no links).

use crate::error::{GkfsError, Result};
use crate::wire::{Decoder, Encoder};

/// What kind of object a metadata record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FileKind {
    /// Regular file with chunked data.
    File,
    /// Directory: exists only as a metadata object; children are found
    /// by prefix scan, never via directory blocks.
    Directory,
}

impl FileKind {
    fn to_wire(self) -> u8 {
        match self {
            FileKind::File => 0,
            FileKind::Directory => 1,
        }
    }
    fn from_wire(v: u8) -> Result<Self> {
        match v {
            0 => Ok(FileKind::File),
            1 => Ok(FileKind::Directory),
            other => Err(GkfsError::Corruption(format!("bad file kind {other}"))),
        }
    }
}

/// Metadata for one file-system object, as stored in the KV store and
/// shipped over RPC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    /// File or directory.
    pub kind: FileKind,
    /// Logical size in bytes (0 for directories).
    pub size: u64,
    /// Mode bits (`rwx` style); advisory only — GekkoFS does not
    /// enforce permissions (§III-A).
    pub mode: u32,
    /// Creation time, nanoseconds since an arbitrary epoch chosen by
    /// the creating daemon. GekkoFS keeps ctime only as an ordering
    /// hint; it is not part of the consistency contract.
    pub ctime_ns: u64,
    /// Last-known modification time (updated on size changes).
    pub mtime_ns: u64,
}

impl Metadata {
    /// New regular-file metadata with default mode `0o644`.
    pub fn new_file(now_ns: u64) -> Metadata {
        Metadata {
            kind: FileKind::File,
            size: 0,
            mode: 0o644,
            ctime_ns: now_ns,
            mtime_ns: now_ns,
        }
    }

    /// New directory metadata with default mode `0o755`.
    pub fn new_dir(now_ns: u64) -> Metadata {
        Metadata {
            kind: FileKind::Directory,
            size: 0,
            mode: 0o755,
            ctime_ns: now_ns,
            mtime_ns: now_ns,
        }
    }

    /// Is dir.
    pub fn is_dir(&self) -> bool {
        self.kind == FileKind::Directory
    }

    /// Serialize into the compact wire/KV representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u8(self.kind.to_wire());
        e.u64(self.size);
        e.u32(self.mode);
        e.u64(self.ctime_ns);
        e.u64(self.mtime_ns);
        e.into_vec()
    }

    /// Deserialize from [`Metadata::encode`] output.
    pub fn decode(buf: &[u8]) -> Result<Metadata> {
        let mut d = Decoder::new(buf);
        let kind = FileKind::from_wire(d.u8()?)?;
        let size = d.u64()?;
        let mode = d.u32()?;
        let ctime_ns = d.u64()?;
        let mtime_ns = d.u64()?;
        d.finish()?;
        Ok(Metadata {
            kind,
            size,
            mode,
            ctime_ns,
            mtime_ns,
        })
    }
}

/// One entry returned by `readdir`: the object's name within the
/// directory plus its kind and size (what `ls -l` needs without an
/// extra round of stats — the daemon reads them from the same KV scan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dirent {
    /// Name.
    pub name: String,
    /// Kind.
    pub kind: FileKind,
    /// Size in bytes (0 for directories).
    pub size: u64,
}

/// Open flags understood by the client's file map. A deliberately
/// small subset of POSIX `O_*`, matching what the paper's target
/// applications use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// With `create`: fail if the file already exists (`O_EXCL`).
    pub exclusive: bool,
    /// Truncate to zero length on open (`O_TRUNC`).
    pub truncate: bool,
    /// All writes append to the end of the file (`O_APPEND`).
    pub append: bool,
}

impl OpenFlags {
    /// RDONLY.
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        create: false,
        exclusive: false,
        truncate: false,
        append: false,
    };
    /// WRONLY.
    pub const WRONLY: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: false,
        exclusive: false,
        truncate: false,
        append: false,
    };
    /// RDWR.
    pub const RDWR: OpenFlags = OpenFlags {
        read: true,
        write: true,
        create: false,
        exclusive: false,
        truncate: false,
        append: false,
    };

    /// `O_CREAT | O_WRONLY | O_TRUNC` — the classic `creat()` combo.
    pub fn create_truncate() -> OpenFlags {
        OpenFlags {
            create: true,
            truncate: true,
            ..OpenFlags::WRONLY
        }
    }

    /// Builder-style helpers.
    pub fn with_create(mut self) -> Self {
        self.create = true;
        self
    }
    /// With exclusive.
    pub fn with_exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }
    /// With truncate.
    pub fn with_truncate(mut self) -> Self {
        self.truncate = true;
        self
    }
    /// With append.
    pub fn with_append(mut self) -> Self {
        self.append = true;
        self
    }

    /// Decode from POSIX `O_*` bits (Linux values), for the C ABI layer.
    pub fn from_posix(flags: i32) -> OpenFlags {
        const O_WRONLY: i32 = 0o1;
        const O_RDWR: i32 = 0o2;
        const O_CREAT: i32 = 0o100;
        const O_EXCL: i32 = 0o200;
        const O_TRUNC: i32 = 0o1000;
        const O_APPEND: i32 = 0o2000;
        let acc = flags & 0o3;
        OpenFlags {
            read: acc != O_WRONLY,
            write: acc == O_WRONLY || acc == O_RDWR,
            create: flags & O_CREAT != 0,
            exclusive: flags & O_EXCL != 0,
            truncate: flags & O_TRUNC != 0,
            append: flags & O_APPEND != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_roundtrip() {
        let m = Metadata {
            kind: FileKind::File,
            size: 0xDEADBEEF,
            mode: 0o640,
            ctime_ns: 123,
            mtime_ns: 456,
        };
        assert_eq!(Metadata::decode(&m.encode()).unwrap(), m);
        let d = Metadata::new_dir(99);
        assert_eq!(Metadata::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn metadata_decode_rejects_garbage() {
        assert!(Metadata::decode(&[]).is_err());
        assert!(Metadata::decode(&[7, 0, 0]).is_err());
        // Trailing bytes are corruption too.
        let mut buf = Metadata::new_file(1).encode();
        buf.push(0);
        assert!(Metadata::decode(&buf).is_err());
    }

    #[test]
    fn posix_flag_decoding() {
        let f = OpenFlags::from_posix(0o102); // O_RDWR | O_CREAT
        assert!(f.read && f.write && f.create && !f.truncate);
        let f = OpenFlags::from_posix(0o1101); // O_WRONLY | O_CREAT | O_TRUNC
        assert!(!f.read && f.write && f.create && f.truncate);
        let f = OpenFlags::from_posix(0);
        assert!(f.read && !f.write);
        let f = OpenFlags::from_posix(0o2002); // O_RDWR | O_APPEND
        assert!(f.read && f.write && f.append);
    }

    #[test]
    fn flag_builders() {
        let f = OpenFlags::create_truncate();
        assert!(f.create && f.truncate && f.write && !f.read);
        let f = OpenFlags::RDWR.with_create().with_exclusive();
        assert!(f.create && f.exclusive);
    }
}
