//! Path handling for GekkoFS' flat namespace.
//!
//! GekkoFS does not keep directory blocks: every file-system object is
//! a key-value pair keyed by its *absolute, normalized* path (§II, "a
//! new technique to handle directories ... replaces directory entries
//! by objects"). All placement and metadata lookups therefore require a
//! canonical textual form, produced by [`normalize`].
//!
//! `readdir` is implemented as a prefix scan over the flat key space,
//! which is why [`is_direct_child`] and [`dir_prefix`] live here.

use crate::error::{GkfsError, Result};

/// The root path of every GekkoFS namespace.
pub const ROOT: &str = "/";

/// Separator character — GekkoFS paths are always `/`-separated,
/// independent of the host platform.
pub const SEP: char = '/';

/// Normalize a path into the canonical flat-namespace form:
///
/// * must be absolute (`/...`) — the client resolves relative paths
///   against its own CWD before calling into the FS;
/// * duplicate separators collapsed (`/a//b` → `/a/b`);
/// * `.` segments removed, `..` segments resolved lexically;
/// * no trailing separator except for the root itself.
///
/// Returns `InvalidArgument` for relative paths, empty paths, and paths
/// that escape the root via `..`, and for segments containing NUL.
pub fn normalize(path: &str) -> Result<String> {
    if path.is_empty() {
        return Err(GkfsError::InvalidArgument("empty path".into()));
    }
    if !path.starts_with(SEP) {
        return Err(GkfsError::InvalidArgument(format!(
            "path must be absolute: {path:?}"
        )));
    }
    if path.contains('\0') {
        return Err(GkfsError::InvalidArgument("path contains NUL".into()));
    }
    let mut stack: Vec<&str> = Vec::new();
    for seg in path.split(SEP) {
        match seg {
            "" | "." => {}
            ".." => {
                if stack.pop().is_none() {
                    return Err(GkfsError::InvalidArgument(format!(
                        "path escapes root: {path:?}"
                    )));
                }
            }
            s => stack.push(s),
        }
    }
    if stack.is_empty() {
        return Ok(ROOT.to_string());
    }
    let mut out = String::with_capacity(path.len());
    for seg in stack {
        out.push(SEP);
        out.push_str(seg);
    }
    Ok(out)
}

/// Parent directory of a normalized path. The parent of the root is the
/// root itself (matching POSIX `dirname("/") == "/"`).
pub fn parent(path: &str) -> &str {
    if path == ROOT {
        return ROOT;
    }
    match path.rfind(SEP) {
        Some(0) => ROOT,
        Some(idx) => &path[..idx],
        None => ROOT,
    }
}

/// Final component of a normalized path (`basename`). The root has an
/// empty name.
pub fn name(path: &str) -> &str {
    if path == ROOT {
        return "";
    }
    match path.rfind(SEP) {
        Some(idx) => &path[idx + 1..],
        None => path,
    }
}

/// Join a normalized directory path and a single component.
pub fn join(dir: &str, component: &str) -> String {
    if dir == ROOT {
        format!("/{component}")
    } else {
        format!("{dir}/{component}")
    }
}

/// The scan prefix for enumerating entries *under* `dir` in the flat
/// key space (used by the daemon's readdir prefix scan).
pub fn dir_prefix(dir: &str) -> String {
    if dir == ROOT {
        ROOT.to_string()
    } else {
        format!("{dir}/")
    }
}

/// Is `candidate` a *direct* child of `dir`? Used to filter prefix-scan
/// results: `/a/b` is a direct child of `/a`, `/a/b/c` is not.
pub fn is_direct_child(dir: &str, candidate: &str) -> bool {
    let prefix = dir_prefix(dir);
    match candidate.strip_prefix(prefix.as_str()) {
        Some(rest) => !rest.is_empty() && !rest.contains(SEP),
        None => false,
    }
}

/// Depth of a normalized path (root = 0, `/a` = 1, `/a/b` = 2).
pub fn depth(path: &str) -> usize {
    if path == ROOT {
        0
    } else {
        path.matches(SEP).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basics() {
        assert_eq!(normalize("/").unwrap(), "/");
        assert_eq!(normalize("/a/b").unwrap(), "/a/b");
        assert_eq!(normalize("/a//b///c").unwrap(), "/a/b/c");
        assert_eq!(normalize("/a/./b/.").unwrap(), "/a/b");
        assert_eq!(normalize("/a/b/../c").unwrap(), "/a/c");
        assert_eq!(normalize("/a/b/..").unwrap(), "/a");
        assert_eq!(normalize("/a/..").unwrap(), "/");
        assert_eq!(normalize("/a/b/").unwrap(), "/a/b");
    }

    #[test]
    fn normalize_rejects_bad_paths() {
        assert!(normalize("").is_err());
        assert!(normalize("relative/path").is_err());
        assert!(normalize("/..").is_err());
        assert!(normalize("/a/../../b").is_err());
        assert!(normalize("/a\0b").is_err());
    }

    #[test]
    fn parent_and_name() {
        assert_eq!(parent("/"), "/");
        assert_eq!(parent("/a"), "/");
        assert_eq!(parent("/a/b/c"), "/a/b");
        assert_eq!(name("/"), "");
        assert_eq!(name("/a"), "a");
        assert_eq!(name("/a/b/c"), "c");
    }

    #[test]
    fn join_roundtrips_with_parent_name() {
        for p in ["/a", "/a/b", "/x/y/z"] {
            assert_eq!(join(parent(p), name(p)), p);
        }
        assert_eq!(join("/", "top"), "/top");
    }

    #[test]
    fn direct_child_detection() {
        assert!(is_direct_child("/", "/a"));
        assert!(is_direct_child("/a", "/a/b"));
        assert!(!is_direct_child("/a", "/a"));
        assert!(!is_direct_child("/a", "/a/b/c"));
        assert!(!is_direct_child("/a", "/ab"));
        assert!(!is_direct_child("/a/b", "/a/c"));
    }

    #[test]
    fn depth_counts_components() {
        assert_eq!(depth("/"), 0);
        assert_eq!(depth("/a"), 1);
        assert_eq!(depth("/a/b/c"), 3);
    }
}
