//! Ranked lock wrappers enforcing a global lock hierarchy.
//!
//! Every long-lived lock in the workspace is an [`OrderedMutex`] or
//! [`OrderedRwLock`] carrying a static [`LockRank`]. The project rule
//! is *strictly descending acquisition*: a thread may acquire a lock
//! only if its rank is strictly lower than the rank of every lock the
//! thread already holds. Any total order over the ranks makes
//! deadlock by lock-order inversion impossible, and strictness also
//! catches "two locks of the same class at once" bugs (two storage
//! shards, two memtables) that an `<=` check would let through.
//!
//! The wrappers are thin over `parking_lot` and compile to plain
//! `parking_lot` locks in release builds — no rank bookkeeping is
//! consulted on the lock/unlock paths. In debug and test builds two
//! validation layers run:
//!
//! 1. a **thread-local held-rank stack**: each acquisition asserts the
//!    new rank is strictly below the most recently acquired held rank
//!    (the stack is strictly decreasing by construction, so its last
//!    element is its minimum) and panics with the full held stack and
//!    a captured backtrace on violation;
//! 2. a **global acquisition graph**: every observed `held → acquired`
//!    rank edge is recorded with the backtrace of its first
//!    occurrence, and each new edge triggers a cycle search. A cycle
//!    means two code paths acquire the same ranks in opposite orders —
//!    the classic A→B / B→A inversion — and the panic message carries
//!    both backtraces (the stored one and the current one).
//!
//! The declared hierarchy lives in [`rank`] and is documented in
//! DESIGN.md ("Concurrency invariants & lock hierarchy"). The static
//! analyzer in `crates/lint` (rule `GKL001`) checks the same hierarchy
//! lexically at CI time; this module is the runtime backstop for
//! nestings that span function or crate boundaries.
//!
//! Ranks are mutable in one controlled way: [`OrderedRwLock::demote`]
//! lowers a lock's rank when its role changes. The kvstore uses this
//! when an active memtable (rank [`rank::KV_MEMTABLE`]) is frozen onto
//! the immutable list (rank [`rank::KV_MEMTABLE_FROZEN`]): writers
//! holding the new active memtable may then consult frozen ones
//! without violating strict descent.

use parking_lot::Condvar;
pub use parking_lot::WaitTimeoutResult;
use std::sync::atomic::{AtomicU16, Ordering};
use std::time::Duration;

/// A static rank in the global lock hierarchy. Higher ranks must be
/// acquired first; see [`rank`] for the declared constants.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LockRank(pub u16);

impl LockRank {
    /// The human-readable name of this rank (for diagnostics), or
    /// `"?"` if the value is not one of the declared constants.
    pub fn name(self) -> &'static str {
        rank::name(self)
    }
}

impl std::fmt::Display for LockRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.name(), self.0)
    }
}

/// The declared lock hierarchy, highest (acquired first) to lowest
/// (acquired last). Gaps between values leave room for future locks.
///
/// A thread holding a lock may only acquire locks of *strictly lower*
/// rank. DESIGN.md documents what each lock protects and why the
/// order is what it is.
pub mod rank {
    use super::LockRank;

    /// Serializes whole preload tests (`crates/posix` test harness).
    pub const POSIX_TEST: LockRank = LockRank(250);
    /// The preload layer's global client slot (`posix::CLIENT`); held
    /// in read mode across every forwarded client operation.
    pub const POSIX_CLIENT: LockRank = LockRank(240);
    /// The preload layer's directory-stream table.
    pub const POSIX_DIR_STREAMS: LockRank = LockRank(230);
    /// The client's fd → open-file table.
    pub const CLIENT_FILEMAP: LockRank = LockRank(220);
    /// A single open file's seek position.
    pub const CLIENT_FILE_POS: LockRank = LockRank(216);
    /// A single open handle's write-back buffer. Below
    /// [`CLIENT_FILE_POS`] so a positional write may claim its offset
    /// and then buffer the bytes; a flush drops the guard before any
    /// RPC (GKL002).
    pub const CLIENT_WB: LockRank = LockRank(214);
    /// The client's stat cache.
    pub const CLIENT_STAT_CACHE: LockRank = LockRank(212);
    /// The client's write-back size cache.
    pub const CLIENT_SIZE_CACHE: LockRank = LockRank(208);
    /// The daemon's TCP-server slot.
    pub const DAEMON_TCP: LockRank = LockRank(190);
    /// The TCP server's accept-thread handle.
    pub const RPC_ACCEPT: LockRank = LockRank(184);
    /// The TCP server's list of open connections.
    pub const RPC_CONNS: LockRank = LockRank(180);
    /// A TCP endpoint's connection slot (live connection + redial
    /// backoff state); held across a frame write, may acquire
    /// [`RPC_PENDING`] inside.
    pub const RPC_CONN: LockRank = LockRank(178);
    /// A TCP endpoint's (or server connection's) write half.
    pub const RPC_WRITER: LockRank = LockRank(176);
    /// A TCP endpoint's pending-reply table.
    pub const RPC_PENDING: LockRank = LockRank(172);
    /// A chaos proxy's list of live connections (test harness).
    pub const CHAOS_CONNS: LockRank = LockRank(166);
    /// A chaos endpoint's parked never-completing replies.
    pub const CHAOS_PARKED: LockRank = LockRank(164);
    /// A chaos endpoint's/proxy's seeded PRNG state (leaf).
    pub const CHAOS_RNG: LockRank = LockRank(162);
    /// The daemon chunk task pool's work queue. Above the storage
    /// ranks: a pool worker takes a job off the queue and then runs
    /// storage code, never the other way around.
    pub const DAEMON_CHUNK_QUEUE: LockRank = LockRank(156);
    /// One shard of the in-memory chunk store.
    pub const STORAGE_SHARD: LockRank = LockRank(150);
    /// The file chunk store's io_uring submission/completion ring.
    /// Between `STORAGE_SHARD` and `STORAGE_FD_SHARD`: batch code
    /// resolves descriptors before locking the ring, but a holder may
    /// still touch the fd cache underneath.
    pub const STORAGE_URING: LockRank = LockRank(148);
    /// One shard of the file chunk store's open-fd cache. Below
    /// `STORAGE_SHARD` so a backend that layered both could resolve
    /// fds while holding a chunk shard (leaf in practice).
    pub const STORAGE_FD_SHARD: LockRank = LockRank(146);
    /// The kvstore's background-thread handles.
    pub const KV_THREADS: LockRank = LockRank(130);
    /// Serializes compactions.
    pub const KV_COMPACTION: LockRank = LockRank(120);
    /// Serializes manifest writers (flush vs compaction installs).
    pub const KV_MANIFEST: LockRank = LockRank(116);
    /// Background-work coordination state (`WorkState`).
    pub const KV_WORK: LockRank = LockRank(112);
    /// The current `Version` pointer.
    pub const KV_VERSION: LockRank = LockRank(108);
    /// The active memtable.
    pub const KV_MEMTABLE: LockRank = LockRank(104);
    /// A frozen (immutable-list) memtable; demoted from
    /// [`KV_MEMTABLE`] at rotation so writers holding the active
    /// memtable may read frozen ones.
    pub const KV_MEMTABLE_FROZEN: LockRank = LockRank(102);
    /// WAL group-commit queue state.
    pub const KV_GROUP_COMMIT: LockRank = LockRank(100);
    /// A blob store's blob map (in-memory store).
    pub const KV_BLOB_MAP: LockRank = LockRank(40);
    /// A blob store's WAL segment state (innermost: the group-commit
    /// leader appends/syncs while holding it).
    pub const KV_WAL_LOG: LockRank = LockRank(36);

    /// Name lookup for diagnostics.
    pub fn name(r: LockRank) -> &'static str {
        match r.0 {
            250 => "POSIX_TEST",
            240 => "POSIX_CLIENT",
            230 => "POSIX_DIR_STREAMS",
            220 => "CLIENT_FILEMAP",
            216 => "CLIENT_FILE_POS",
            214 => "CLIENT_WB",
            212 => "CLIENT_STAT_CACHE",
            208 => "CLIENT_SIZE_CACHE",
            190 => "DAEMON_TCP",
            184 => "RPC_ACCEPT",
            180 => "RPC_CONNS",
            178 => "RPC_CONN",
            176 => "RPC_WRITER",
            172 => "RPC_PENDING",
            166 => "CHAOS_CONNS",
            164 => "CHAOS_PARKED",
            162 => "CHAOS_RNG",
            156 => "DAEMON_CHUNK_QUEUE",
            150 => "STORAGE_SHARD",
            148 => "STORAGE_URING",
            146 => "STORAGE_FD_SHARD",
            130 => "KV_THREADS",
            120 => "KV_COMPACTION",
            116 => "KV_MANIFEST",
            112 => "KV_WORK",
            108 => "KV_VERSION",
            104 => "KV_MEMTABLE",
            102 => "KV_MEMTABLE_FROZEN",
            100 => "KV_GROUP_COMMIT",
            40 => "KV_BLOB_MAP",
            36 => "KV_WAL_LOG",
            _ => "?",
        }
    }
}

/// Debug/test-only validation: thread-local held-rank stack plus a
/// global acquisition graph with cycle detection. Public so the
/// graph's cycle detector can be unit-tested directly (strict rank
/// checking makes runtime cycles otherwise unreachable).
#[cfg(debug_assertions)]
pub mod checker {
    use super::LockRank;
    use std::cell::RefCell;
    use std::collections::HashMap;

    thread_local! {
        static HELD: RefCell<Vec<u16>> = const { RefCell::new(Vec::new()) };
    }

    /// `held-rank → acquired-rank` edges, each with the backtrace of
    /// its first occurrence. A `std::sync` mutex, not one of our own
    /// wrappers: the checker must not recurse into itself, and it is
    /// deliberately outside the ranked hierarchy.
    static GRAPH: std::sync::Mutex<Option<HashMap<(u16, u16), String>>> =
        std::sync::Mutex::new(None);

    /// Validate and record an acquisition of `rank` on this thread.
    /// Panics if `rank` is not strictly below every held rank.
    pub fn on_acquire(rank: LockRank) {
        // The stack is strictly decreasing, so its last element is its
        // minimum.
        let top = HELD.with(|h| h.borrow().last().copied());
        if let Some(top) = top {
            if rank.0 >= top {
                panic!(
                    "lock order violation: acquiring {} while holding {} \
                     (held stack, outermost first: {}) — ranks must be \
                     acquired strictly descending\nacquisition backtrace:\n{}",
                    rank,
                    LockRank(top),
                    held_stack(),
                    std::backtrace::Backtrace::force_capture(),
                );
            }
            record_edge(LockRank(top), rank);
        }
        HELD.with(|h| h.borrow_mut().push(rank.0));
    }

    /// Record a release of `rank` on this thread. Guards may be
    /// dropped out of order, so the most recent matching entry is
    /// removed rather than requiring LIFO discipline.
    pub fn on_release(rank: LockRank) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&r| r == rank.0) {
                h.remove(pos);
            }
        });
    }

    /// The current thread's held ranks, outermost first, for
    /// diagnostics.
    pub fn held_stack() -> String {
        HELD.with(|h| {
            let h = h.borrow();
            if h.is_empty() {
                return "<empty>".into();
            }
            h.iter()
                .map(|&r| LockRank(r).to_string())
                .collect::<Vec<_>>()
                .join(" > ")
        })
    }

    /// Record the acquisition-order edge `held → acquired` in the
    /// global graph and search for a cycle through it. On a cycle the
    /// panic message carries the stored backtrace of the conflicting
    /// edge *and* the current one — both sides of the inversion.
    pub fn record_edge(held: LockRank, acquired: LockRank) {
        // A poisoned checker mutex just means another thread panicked
        // mid-record; the map itself is still structurally sound.
        let mut slot = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
        let graph = slot.get_or_insert_with(HashMap::new);
        let key = (held.0, acquired.0);
        if graph.contains_key(&key) {
            return;
        }
        let here = std::backtrace::Backtrace::force_capture().to_string();
        graph.insert(key, here.clone());
        if let Some(path) = find_path(graph, acquired.0, held.0) {
            let mut msg = format!(
                "lock acquisition cycle: {} → {} closes a cycle {}\n\
                 edge recorded here:\n{}\n",
                held,
                acquired,
                path.iter()
                    .map(|&r| LockRank(r).to_string())
                    .collect::<Vec<_>>()
                    .join(" → "),
                here,
            );
            let mut prev = acquired.0;
            for &next in path.iter().skip(1) {
                if let Some(bt) = graph.get(&(prev, next)) {
                    msg.push_str(&format!(
                        "conflicting edge {} → {} recorded here:\n{}\n",
                        LockRank(prev),
                        LockRank(next),
                        bt
                    ));
                }
                prev = next;
            }
            drop(slot);
            panic!("{msg}");
        }
    }

    /// DFS for a path `from → … → to` over the recorded edges.
    fn find_path(graph: &HashMap<(u16, u16), String>, from: u16, to: u16) -> Option<Vec<u16>> {
        let mut stack = vec![vec![from]];
        let mut seen = std::collections::HashSet::new();
        seen.insert(from);
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("path is never empty");
            if last == to {
                return Some(path);
            }
            for &(a, b) in graph.keys() {
                if a == last && seen.insert(b) {
                    let mut p = path.clone();
                    p.push(b);
                    stack.push(p);
                }
            }
        }
        None
    }
}

/// A `parking_lot::Mutex` carrying a static [`LockRank`], validated
/// against the global hierarchy in debug/test builds.
pub struct OrderedMutex<T: ?Sized> {
    rank: AtomicU16,
    inner: parking_lot::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Create a ranked mutex. `const` so it can initialize statics.
    pub const fn new(rank: LockRank, value: T) -> OrderedMutex<T> {
        OrderedMutex {
            rank: AtomicU16::new(rank.0),
            inner: parking_lot::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// This lock's current rank.
    pub fn rank(&self) -> LockRank {
        LockRank(self.rank.load(Ordering::Relaxed))
    }

    /// Acquire the mutex. In debug builds, panics if any held lock's
    /// rank is not strictly above this one's. The rank check runs
    /// *before* blocking so an acquisition that would deadlock still
    /// reports the ordering bug.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let rank = {
            let r = self.rank();
            checker::on_acquire(r);
            r
        };
        OrderedMutexGuard {
            inner: self.inner.lock(),
            #[cfg(debug_assertions)]
            rank,
        }
    }
}

impl<T: Default> Default for OrderedMutex<T> {
    fn default() -> OrderedMutex<T> {
        // A default-constructed lock has no declared place in the
        // hierarchy; rank 0 means "innermost" (nothing may be
        // acquired under it), the safe default.
        OrderedMutex::new(LockRank(0), T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank())
            .finish_non_exhaustive()
    }
}

/// Guard for [`OrderedMutex`]. Dereferences to the protected value.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    inner: parking_lot::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: LockRank,
}

impl<T> OrderedMutexGuard<'_, T> {
    /// Block on `cv`, atomically releasing the mutex while waiting.
    /// The held-rank stack keeps the entry during the wait: the thread
    /// is blocked, so it cannot acquire anything in between, and it
    /// holds the lock again when this returns.
    pub fn wait(&mut self, cv: &Condvar) {
        cv.wait(&mut self.inner);
    }

    /// Like [`wait`](Self::wait) with a timeout.
    pub fn wait_for(&mut self, cv: &Condvar, timeout: Duration) -> WaitTimeoutResult {
        cv.wait_for(&mut self.inner, timeout)
    }
}

impl<T: ?Sized> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        checker::on_release(self.rank);
    }
}

/// A `parking_lot::RwLock` carrying a static [`LockRank`], validated
/// against the global hierarchy in debug/test builds.
pub struct OrderedRwLock<T: ?Sized> {
    rank: AtomicU16,
    inner: parking_lot::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Create a ranked rwlock. `const` so it can initialize statics.
    pub const fn new(rank: LockRank, value: T) -> OrderedRwLock<T> {
        OrderedRwLock {
            rank: AtomicU16::new(rank.0),
            inner: parking_lot::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// This lock's current rank.
    pub fn rank(&self) -> LockRank {
        LockRank(self.rank.load(Ordering::Relaxed))
    }

    /// Lower this lock's rank because its role changed (e.g. an
    /// active memtable being frozen onto the immutable list).
    /// Outstanding guards release under the rank they were acquired
    /// with; only later acquisitions see the new rank. Raising a rank
    /// is not supported — it could hide inversions recorded under the
    /// old value.
    pub fn demote(&self, new_rank: LockRank) {
        debug_assert!(
            new_rank.0 <= self.rank.load(Ordering::Relaxed),
            "demote must lower the rank"
        );
        self.rank.store(new_rank.0, Ordering::Relaxed);
    }

    /// Acquire shared. Read and write acquisitions rank identically:
    /// two readers never deadlock on one lock, but a read guard held
    /// while acquiring a second lock orders against writers of that
    /// second lock all the same.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let rank = {
            let r = self.rank();
            checker::on_acquire(r);
            r
        };
        OrderedRwLockReadGuard {
            inner: self.inner.read(),
            #[cfg(debug_assertions)]
            rank,
        }
    }

    /// Acquire exclusive.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let rank = {
            let r = self.rank();
            checker::on_acquire(r);
            r
        };
        OrderedRwLockWriteGuard {
            inner: self.inner.write(),
            #[cfg(debug_assertions)]
            rank,
        }
    }
}

impl<T: Default> Default for OrderedRwLock<T> {
    fn default() -> OrderedRwLock<T> {
        OrderedRwLock::new(LockRank(0), T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank())
            .finish_non_exhaustive()
    }
}

/// Shared guard for [`OrderedRwLock`].
pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: LockRank,
}

impl<T: ?Sized> std::ops::Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for OrderedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        checker::on_release(self.rank);
    }
}

/// Exclusive guard for [`OrderedRwLock`].
pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: LockRank,
}

impl<T: ?Sized> std::ops::Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for OrderedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        checker::on_release(self.rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descending_acquisition_is_allowed() {
        let a = OrderedMutex::new(LockRank(30), 1);
        let b = OrderedMutex::new(LockRank(20), 2);
        let c = OrderedMutex::new(LockRank(10), 3);
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.lock();
        assert_eq!(*ga + *gb + *gc, 6);
    }

    #[test]
    #[should_panic(expected = "lock order violation")]
    fn ascending_acquisition_panics() {
        // A seeded A→B / B→A inversion: this thread takes B (low) then
        // A (high); the rank check fires on the second acquisition.
        let a = OrderedMutex::new(LockRank(30), ());
        let b = OrderedMutex::new(LockRank(20), ());
        let _gb = b.lock();
        let _ga = a.lock();
    }

    #[test]
    #[should_panic(expected = "lock order violation")]
    fn equal_rank_acquisition_panics() {
        let a = OrderedMutex::new(LockRank(25), ());
        let b = OrderedMutex::new(LockRank(25), ());
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn out_of_order_release_is_tracked() {
        let a = OrderedMutex::new(LockRank(30), ());
        let b = OrderedMutex::new(LockRank(20), ());
        let c = OrderedMutex::new(LockRank(10), ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release the outer guard first
        let gc = c.lock(); // still strictly below b's rank
        drop(gb);
        drop(gc);
        // With everything released, a high rank is acquirable again.
        let _ga = a.lock();
    }

    #[test]
    fn rwlock_read_then_lower_write() {
        let ver = OrderedRwLock::new(LockRank(50), 0u32);
        let mem = OrderedRwLock::new(LockRank(40), 0u32);
        let _v = ver.read();
        let mut m = mem.write();
        *m += 1;
    }

    #[test]
    fn demote_allows_frozen_sibling_reads() {
        // Model the memtable freeze: active and frozen start life at
        // the same rank; freezing demotes, after which holding the
        // active one while reading the frozen one is legal.
        let frozen = OrderedRwLock::new(LockRank(104), 1u32);
        let active = OrderedRwLock::new(LockRank(104), 2u32);
        frozen.demote(LockRank(102));
        let a = active.write();
        let f = frozen.read();
        assert_eq!(*a + *f, 3);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    #[cfg(debug_assertions)] // the checker module only exists in debug builds
    fn graph_detects_seeded_cycle() {
        // Strict rank checking makes a runtime cycle unreachable, so
        // drive the graph directly: the reverse edge closes a cycle
        // and the panic carries both recorded backtraces. Ranks 1 and
        // 2 are unused by real locks, so this cannot interfere with
        // edges recorded by other tests in this process.
        checker::record_edge(LockRank(2), LockRank(1));
        checker::record_edge(LockRank(1), LockRank(2));
    }

    #[test]
    fn condvar_wait_for_roundtrip() {
        let m = OrderedMutex::new(LockRank(10), false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = g.wait_for(&cv, Duration::from_millis(5));
        assert!(r.timed_out());
        *g = true;
        assert!(*g);
    }

    #[test]
    fn const_static_init() {
        static S: OrderedMutex<u32> = OrderedMutex::new(LockRank(10), 7);
        assert_eq!(*S.lock(), 7);
    }
}
