//! # gkfs-common — shared foundations for the GekkoFS reproduction
//!
//! This crate holds everything that both sides of the file system — the
//! client library and the per-node daemon — must agree on:
//!
//! * [`error`] — errno-shaped error type shared across RPC boundaries.
//! * [`hash`] — stable, from-scratch hash functions (XXH64, FNV-1a) used
//!   by the distributor. Stability matters: every client must map a path
//!   to the same daemon without coordination.
//! * [`distributor`] — the pseudo-random placement function from the
//!   paper (§III-B): `hash(path)` places metadata, `hash(path, chunk_id)`
//!   places each data chunk (wide striping).
//! * [`chunk`] — chunk arithmetic for splitting byte ranges into
//!   fixed-size chunks (default 512 KiB, as in the paper's evaluation).
//! * [`path`] — normalization of the flat namespace GekkoFS keeps
//!   internally (directory entries are objects, not directory blocks).
//! * [`types`] — file metadata, open flags, and file modes.
//! * [`wire`] — a small, explicit little-endian codec used by both the
//!   RPC layer and the KV store's on-disk formats.
//! * [`crc`] — CRC32 (IEEE) for WAL and SSTable block integrity.
//! * [`config`] — daemon/cluster configuration knobs.
//! * [`retry`] — deadline-aware retry: bounded backoff with
//!   deterministic jitter, operation deadlines, per-endpoint circuit
//!   breakers.
//! * [`lock`] — ranked mutex/rwlock wrappers enforcing the global lock
//!   hierarchy (strictly descending acquisition), validated at runtime
//!   in debug builds and lexically by `gkfs-lint`.
//! * [`taskpool`] — bounded worker pool with caller-runs overflow, the
//!   daemon's stand-in for Argobots ULT dispatch (§III-B).

#![warn(missing_docs)]

pub mod chunk;
pub mod config;
pub mod crc;
pub mod distributor;
pub mod error;
pub mod hash;
pub mod lock;
pub mod log;
pub mod path;
pub mod retry;
pub mod taskpool;
pub mod types;
pub mod wire;

pub use chunk::{chunk_range, ChunkInfo, ChunkLayout};
pub use config::{ClusterConfig, DaemonConfig, IoBackend, RetryConfig, DEFAULT_CHUNK_SIZE};
pub use distributor::{Distributor, JumpDistributor, LocalityDistributor, SimpleHashDistributor};
pub use error::{GkfsError, Result};
pub use lock::{LockRank, OrderedMutex, OrderedRwLock};
pub use retry::{BreakerState, CircuitBreaker, Deadline, RetryPolicy};
pub use taskpool::TaskPool;
pub use types::{FileKind, Metadata, OpenFlags};
