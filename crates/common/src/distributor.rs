//! Data and metadata distribution — the heart of GekkoFS' scalability.
//!
//! From the paper (§III-B-a): *"Each file system operation is forwarded
//! via an RPC message to a specific daemon (determined by hashing of
//! the file's path) where it is directly executed. ... GekkoFS uses a
//! pseudo-random distribution to spread data and metadata across all
//! nodes, also known as wide-striping. Because each client is able to
//! independently resolve the responsible node for a file system
//! operation, GekkoFS does not require central data structures that
//! keep track of where metadata or data is located."*
//!
//! Two distributors are provided:
//!
//! * [`SimpleHashDistributor`] — `hash % n`, what GekkoFS shipped.
//! * [`JumpDistributor`] — Jump Consistent Hash (Lamping & Veach),
//!   included for the paper's §V future-work item *"explore different
//!   data distribution patterns"*; it minimizes reshuffling when the
//!   node count changes. Benchmarked as an ablation.

use crate::hash::{hash_chunk, hash_path};

/// Node index within a deployment (0-based, dense).
pub type NodeId = usize;

/// Maps file-system objects onto daemons. Implementations must be pure
/// functions of their inputs — clients and daemons each instantiate
/// their own copy and must always agree.
pub trait Distributor: Send + Sync + std::fmt::Debug {
    /// Number of nodes this distributor spreads over.
    fn nodes(&self) -> usize;

    /// Which daemon owns the *metadata* of `path`.
    fn locate_metadata(&self, path: &str) -> NodeId;

    /// Which daemon stores chunk `chunk_id` of `path`.
    fn locate_chunk(&self, path: &str, chunk_id: u64) -> NodeId;

    /// All daemons that may hold chunks of any file — used for
    /// broadcast operations (truncate, remove data, readdir).
    fn all_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes()).collect()
    }
}

/// The distribution GekkoFS shipped: stable hash modulo node count.
#[derive(Debug, Clone)]
pub struct SimpleHashDistributor {
    nodes: usize,
}

impl SimpleHashDistributor {
    /// Create a distributor over `nodes` daemons.
    pub fn new(nodes: usize) -> SimpleHashDistributor {
        assert!(nodes > 0, "need at least one node");
        SimpleHashDistributor { nodes }
    }
}

impl Distributor for SimpleHashDistributor {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn locate_metadata(&self, path: &str) -> NodeId {
        (hash_path(path) % self.nodes as u64) as NodeId
    }

    fn locate_chunk(&self, path: &str, chunk_id: u64) -> NodeId {
        (hash_chunk(path, chunk_id) % self.nodes as u64) as NodeId
    }
}

/// Jump Consistent Hash distributor (ablation / future-work §V).
///
/// `jump(key, n)` maps a 64-bit key onto `0..n` such that growing `n`
/// by one relocates only `1/n` of the keys — relevant for the paper's
/// "campaign" use case where a temporary file system might be resized.
#[derive(Debug, Clone)]
pub struct JumpDistributor {
    nodes: usize,
}

impl JumpDistributor {
    /// Create a distributor over `nodes` daemons.
    pub fn new(nodes: usize) -> JumpDistributor {
        assert!(nodes > 0, "need at least one node");
        JumpDistributor { nodes }
    }

    /// The Jump Consistent Hash function (Lamping & Veach, 2014).
    pub fn jump(mut key: u64, buckets: usize) -> usize {
        let mut b: i64 = -1;
        let mut j: i64 = 0;
        while j < buckets as i64 {
            b = j;
            key = key.wrapping_mul(2862933555777941757).wrapping_add(1);
            j = ((b.wrapping_add(1) as f64) * ((1u64 << 31) as f64)
                / (((key >> 33).wrapping_add(1)) as f64)) as i64;
        }
        b as usize
    }
}

impl Distributor for JumpDistributor {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn locate_metadata(&self, path: &str) -> NodeId {
        Self::jump(hash_path(path), self.nodes)
    }

    fn locate_chunk(&self, path: &str, chunk_id: u64) -> NodeId {
        Self::jump(hash_chunk(path, chunk_id), self.nodes)
    }
}

/// BurstFS-style locality distributor (§II contrast: *"BurstFS ...
/// unlike GekkoFS, is limited to write data locally"*; §V asks to
/// "explore different data distribution patterns").
///
/// Metadata still places by path hash — every client must find it —
/// but *chunks* all land on the instantiating client's own node.
/// Writes hit the local SSD with no network; reads of another rank's
/// data cross the network to wherever the writer lived, and a file's
/// bandwidth is capped by one SSD. The trade-off is measured in the
/// `gkfs-sim` locality ablation.
#[derive(Debug, Clone)]
pub struct LocalityDistributor {
    nodes: usize,
    local: NodeId,
}

impl LocalityDistributor {
    /// Create a distributor over `nodes` daemons.
    pub fn new(nodes: usize, local: NodeId) -> LocalityDistributor {
        assert!(nodes > 0, "need at least one node");
        assert!(local < nodes, "local node {local} out of range 0..{nodes}");
        LocalityDistributor { nodes, local }
    }
}

impl Distributor for LocalityDistributor {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn locate_metadata(&self, path: &str) -> NodeId {
        // Metadata must be resolvable by *other* clients: hash placed.
        (hash_path(path) % self.nodes as u64) as NodeId
    }

    fn locate_chunk(&self, _path: &str, _chunk_id: u64) -> NodeId {
        self.local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balance_of<D: Distributor>(d: &D, files: usize) -> (usize, usize) {
        let mut counts = vec![0usize; d.nodes()];
        for i in 0..files {
            counts[d.locate_metadata(&format!("/dir/file.{i}"))] += 1;
        }
        (
            *counts.iter().min().unwrap(),
            *counts.iter().max().unwrap(),
        )
    }

    #[test]
    fn simple_hash_is_deterministic() {
        let d1 = SimpleHashDistributor::new(16);
        let d2 = SimpleHashDistributor::new(16);
        for i in 0..100 {
            let p = format!("/a/b/{i}");
            assert_eq!(d1.locate_metadata(&p), d2.locate_metadata(&p));
            assert_eq!(d1.locate_chunk(&p, i), d2.locate_chunk(&p, i));
        }
    }

    #[test]
    fn simple_hash_balances_metadata() {
        let d = SimpleHashDistributor::new(16);
        let (min, max) = balance_of(&d, 16_000);
        // ~1000 per node expected; allow generous statistical slack.
        assert!(min > 800, "min load {min} too low");
        assert!(max < 1200, "max load {max} too high");
    }

    #[test]
    fn chunks_of_one_file_stripe_widely() {
        let d = SimpleHashDistributor::new(32);
        let mut seen = std::collections::HashSet::new();
        for c in 0..256 {
            seen.insert(d.locate_chunk("/big/file", c));
        }
        // 256 chunks over 32 nodes should hit nearly all nodes.
        assert!(seen.len() >= 28, "only {} nodes hit", seen.len());
    }

    #[test]
    fn jump_matches_reference_behaviour() {
        // jump(k, 1) == 0 always.
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(JumpDistributor::jump(k, 1), 0);
        }
        // Outputs are always in range.
        for k in 0..1000u64 {
            let b = JumpDistributor::jump(k.wrapping_mul(0x9E3779B97F4A7C15), 7);
            assert!(b < 7);
        }
    }

    #[test]
    fn jump_minimal_reshuffle() {
        // Growing 16 -> 17 nodes must move only ~1/17 of keys.
        let moved = (0..10_000u64)
            .filter(|&k| {
                let key = crate::hash::xxh64(&k.to_le_bytes(), 0);
                JumpDistributor::jump(key, 16) != JumpDistributor::jump(key, 17)
            })
            .count();
        let expect = 10_000 / 17;
        assert!(
            moved < expect * 2,
            "moved {moved}, expected about {expect}"
        );
    }

    #[test]
    fn jump_balances_metadata() {
        let d = JumpDistributor::new(16);
        let (min, max) = balance_of(&d, 16_000);
        assert!(min > 800, "min load {min} too low");
        assert!(max < 1200, "max load {max} too high");
    }

    #[test]
    fn locality_pins_chunks_but_hashes_metadata() {
        let d = LocalityDistributor::new(16, 5);
        for c in 0..64 {
            assert_eq!(d.locate_chunk("/any/file", c), 5, "all chunks local");
        }
        // Metadata spreads like the simple distributor so that any
        // client can resolve it.
        let simple = SimpleHashDistributor::new(16);
        for i in 0..100 {
            let p = format!("/f{i}");
            assert_eq!(d.locate_metadata(&p), simple.locate_metadata(&p));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locality_rejects_bad_local_node() {
        LocalityDistributor::new(4, 4);
    }

    #[test]
    fn single_node_maps_everything_to_zero() {
        let d = SimpleHashDistributor::new(1);
        assert_eq!(d.locate_metadata("/x"), 0);
        assert_eq!(d.locate_chunk("/x", 12345), 0);
        assert_eq!(d.all_nodes(), vec![0]);
    }
}
