//! `GekkoFile` — a `std::io`-compatible handle over a GekkoFS file.
//!
//! The raw [`GekkoClient`] API mirrors the POSIX surface the preload
//! layer needs (`open`/`read`/`write`/`lseek` on integer descriptors).
//! Rust applications want `std::io::{Read, Write, Seek}` instead, so
//! they can hand a GekkoFS file to anything generic over those traits
//! (`io::copy`, `BufReader`, serializers, …). This wrapper provides
//! exactly that, closing the descriptor on drop.

use gkfs_client::GekkoClient;
use gkfs_common::{GkfsError, OpenFlags};
use std::io::{self, Read, Seek, SeekFrom, Write};

/// An open GekkoFS file with RAII close and `std::io` impls.
///
/// ```no_run
/// use gekkofs::{Cluster, ClusterConfig, GekkoFile, OpenFlags};
/// use std::io::{Read, Write, Seek, SeekFrom};
///
/// let cluster = Cluster::deploy(ClusterConfig::new(2)).unwrap();
/// let fs = cluster.mount().unwrap();
/// let mut f = GekkoFile::open(&fs, "/log.txt", OpenFlags::RDWR.with_create()).unwrap();
/// f.write_all(b"hello").unwrap();
/// f.seek(SeekFrom::Start(0)).unwrap();
/// let mut buf = String::new();
/// f.read_to_string(&mut buf).unwrap();
/// assert_eq!(buf, "hello");
/// ```
pub struct GekkoFile<'fs> {
    fs: &'fs GekkoClient,
    fd: i32,
    closed: bool,
}

fn to_io(e: GkfsError) -> io::Error {
    io::Error::from_raw_os_error(e.errno())
}

impl<'fs> GekkoFile<'fs> {
    /// Open (optionally creating) `path` on the mounted client.
    pub fn open(
        fs: &'fs GekkoClient,
        path: &str,
        flags: OpenFlags,
    ) -> gkfs_common::Result<GekkoFile<'fs>> {
        let fd = fs.open(path, flags)?;
        Ok(GekkoFile {
            fs,
            fd,
            closed: false,
        })
    }

    /// Create a new file for writing (`O_CREAT|O_EXCL|O_WRONLY`).
    pub fn create_new(fs: &'fs GekkoClient, path: &str) -> gkfs_common::Result<GekkoFile<'fs>> {
        Self::open(fs, path, OpenFlags::WRONLY.with_create().with_exclusive())
    }

    /// The underlying GekkoFS descriptor.
    pub fn as_raw_fd(&self) -> i32 {
        self.fd
    }

    /// Current file size (via the open handle's size cache — no stat
    /// round-trip; includes unflushed write-back bytes).
    pub fn len(&self) -> gkfs_common::Result<u64> {
        Ok(self.fs.handle(self.fd)?.size())
    }

    /// True when the file has zero length.
    pub fn is_empty(&self) -> gkfs_common::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Flush buffered size updates and close. Errors are reported
    /// (unlike drop, which must swallow them).
    pub fn close(mut self) -> gkfs_common::Result<()> {
        self.closed = true;
        self.fs.close(self.fd)
    }
}

impl Read for GekkoFile<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let data = self.fs.read(self.fd, buf.len()).map_err(to_io)?;
        buf[..data.len()].copy_from_slice(&data);
        Ok(data.len())
    }
}

impl Write for GekkoFile<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.fs.write(self.fd, buf).map_err(to_io)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.fs.fsync(self.fd).map_err(to_io)
    }
}

impl Seek for GekkoFile<'_> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        use gkfs_client::client::Whence;
        let (off, whence) = match pos {
            SeekFrom::Start(o) => (o as i64, Whence::Set),
            SeekFrom::Current(o) => (o, Whence::Cur),
            SeekFrom::End(o) => (o, Whence::End),
        };
        self.fs.lseek(self.fd, off, whence).map_err(to_io)
    }
}

impl Drop for GekkoFile<'_> {
    fn drop(&mut self) {
        if !self.closed {
            let _ = self.fs.close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterConfig};

    #[test]
    fn std_io_traits_roundtrip() {
        let cluster = Cluster::deploy(ClusterConfig::new(2)).unwrap();
        let fs = cluster.mount().unwrap();
        let mut f = GekkoFile::open(&fs, "/io", OpenFlags::RDWR.with_create()).unwrap();
        f.write_all(b"hello std::io world").unwrap();
        f.flush().unwrap();
        f.seek(SeekFrom::Start(6)).unwrap();
        let mut s = String::new();
        f.read_to_string(&mut s).unwrap();
        assert_eq!(s, "std::io world");
        assert_eq!(f.len().unwrap(), 19);
        f.close().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn io_copy_between_gekko_files() {
        let cluster = Cluster::deploy(ClusterConfig::new(2).with_chunk_size(4096)).unwrap();
        let fs = cluster.mount().unwrap();
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        {
            let mut src = GekkoFile::create_new(&fs, "/src").unwrap();
            src.write_all(&payload).unwrap();
        } // drop closes
        let mut src = GekkoFile::open(&fs, "/src", OpenFlags::RDONLY).unwrap();
        let mut dst = GekkoFile::create_new(&fs, "/dst").unwrap();
        let n = std::io::copy(&mut src, &mut dst).unwrap();
        assert_eq!(n, payload.len() as u64);
        drop((src, dst));
        let h = fs.open_handle("/dst", OpenFlags::RDONLY).unwrap();
        assert_eq!(h.pread(0, payload.len()).unwrap(), payload);
        cluster.shutdown();
    }

    #[test]
    fn bufreader_line_parsing() {
        use std::io::BufRead;
        let cluster = Cluster::deploy(ClusterConfig::new(2)).unwrap();
        let fs = cluster.mount().unwrap();
        {
            let mut f = GekkoFile::create_new(&fs, "/lines").unwrap();
            for i in 0..100 {
                writeln!(f, "line-{i}").unwrap();
            }
        }
        let f = GekkoFile::open(&fs, "/lines", OpenFlags::RDONLY).unwrap();
        let lines: Vec<String> = std::io::BufReader::new(f)
            .lines()
            .map(|l| l.unwrap())
            .collect();
        assert_eq!(lines.len(), 100);
        assert_eq!(lines[42], "line-42");
        cluster.shutdown();
    }

    #[test]
    fn io_errors_carry_errno() {
        let cluster = Cluster::deploy(ClusterConfig::new(1)).unwrap();
        let fs = cluster.mount().unwrap();
        // Read on a write-only handle -> EBADF through std::io.
        let mut f = GekkoFile::create_new(&fs, "/wo").unwrap();
        let mut buf = [0u8; 4];
        let err = f.read(&mut buf).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(9), "EBADF");
        cluster.shutdown();
    }
}
