//! # gekkofs — a temporary distributed file system for HPC applications
//!
//! A from-scratch Rust reproduction of **GekkoFS** (Vef et al., IEEE
//! CLUSTER 2018): a temporary, user-space burst-buffer file system that
//! pools node-local storage into a single global namespace with relaxed
//! POSIX semantics.
//!
//! ## Architecture (paper Fig. 1)
//!
//! * every node runs a **daemon** (`gkfs-daemon`): RocksDB-style KV
//!   store for metadata (`gkfs-kvstore`), one-file-per-chunk data store
//!   (`gkfs-storage`), Margo-style RPC service (`gkfs-rpc`);
//! * applications link the **client** (`gkfs-client`): a kernel-
//!   independent file map, a pseudo-random distributor that places
//!   metadata by `hash(path)` and data by `hash(path, chunk_id)`
//!   (wide striping), and parallel chunk fan-out;
//! * there is **no central server** of any kind.
//!
//! ## Quickstart
//!
//! ```
//! use gekkofs::{Cluster, OpenFlags};
//!
//! // Pool 4 (in-process) nodes into one namespace.
//! let cluster = Cluster::deploy(gekkofs::ClusterConfig::new(4)).unwrap();
//! let fs = cluster.mount().unwrap();
//!
//! let f = fs.open_handle("/results.dat", OpenFlags::RDWR.with_create()).unwrap();
//! f.pwrite(0, b"simulation output").unwrap();
//! assert_eq!(f.size(), 17);
//! let back = f.pread(0, 64).unwrap();
//! assert_eq!(back, b"simulation output");
//! f.close().unwrap();
//!
//! cluster.shutdown();
//! ```
//!
//! ## Semantics (paper §III-A)
//!
//! * strong consistency for operations that target one file;
//! * eventually consistent `readdir` (and `rmdir` emptiness checks);
//! * no `rename`, no links, no distributed locking, no permissions
//!   enforcement;
//! * synchronous and cache-less by default; the optional write-size
//!   coalescing cache from §IV-B is enabled with
//!   [`ClusterConfig::with_size_cache`], and the opt-in per-handle
//!   write-back buffer with [`ClusterConfig::with_write_back`].

#![warn(missing_docs)]

pub mod cluster;
pub mod file;

pub use cluster::{Cluster, TcpCluster};
pub use file::GekkoFile;
pub use gkfs_client::client::Whence;
pub use gkfs_client::{ClientStats, FileHandle, FsckReport, GekkoClient, NodeHealthSnapshot};
pub use gkfs_common::{
    ClusterConfig, DaemonConfig, FileKind, GkfsError, Metadata, OpenFlags, Result,
    DEFAULT_CHUNK_SIZE,
};
pub use gkfs_common::config::{DistributorKind, RetryConfig};
pub use gkfs_common::types::Dirent;
pub use gkfs_daemon::Daemon;
