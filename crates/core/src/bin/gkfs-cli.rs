//! `gkfs-cli` — a command-line client for a running GekkoFS
//! deployment.
//!
//! Connects to daemons listed in a hosts file (one `ADDR` per line, as
//! printed by `gkfs-daemon`) or a comma-separated list, then executes
//! one file-system command:
//!
//! ```sh
//! gkfs-cli --hosts hosts.txt ls /
//! gkfs-cli --hosts 127.0.0.1:9820,127.0.0.1:9821 put ./data.bin /data.bin
//! gkfs-cli --hosts hosts.txt stat /data.bin
//! gkfs-cli --hosts hosts.txt get /data.bin ./back.bin
//! gkfs-cli --hosts hosts.txt rm /data.bin
//! ```
//!
//! All clients must agree on `--chunk-size` (and distributor) with
//! every other client of the deployment — the usual GekkoFS contract
//! that placement is a pure function of shared configuration.

use gekkofs::{ClusterConfig, GekkoClient, GkfsError};
use gkfs_rpc::{Endpoint, TcpEndpoint};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: gkfs-cli --hosts LIST|FILE [--chunk-size BYTES] COMMAND...\n\
         \n\
         commands:\n\
         ls PATH                list a directory\n\
         stat PATH              print metadata\n\
         mkdir PATH             create a directory\n\
         rmdir PATH             remove an empty directory\n\
         touch PATH             create an empty file\n\
         rm PATH                remove a file\n\
         put LOCAL REMOTE       upload a local file\n\
         get REMOTE LOCAL       download to a local file\n\
         cat PATH               print file contents\n\
         write PATH TEXT        write TEXT at offset 0\n\
         truncate PATH SIZE     truncate/extend a file\n\
         df                     per-daemon statistics\n\
         fsck [--purge]         namespace consistency check\n\
         lint [ARGS...]         run the gkfs-lint analyzer (no --hosts)"
    );
    std::process::exit(2);
}

fn connect(hosts: &str, chunk_size: u64) -> Result<GekkoClient, GkfsError> {
    let addrs: Vec<String> = if std::path::Path::new(hosts).exists() {
        std::fs::read_to_string(hosts)
            .map_err(GkfsError::from)?
            .lines()
            .map(|l| l.trim().trim_start_matches("LISTENING").trim().to_string())
            .filter(|l| !l.is_empty())
            .collect()
    } else {
        hosts.split(',').map(|s| s.trim().to_string()).collect()
    };
    if addrs.is_empty() {
        return Err(GkfsError::InvalidArgument("no daemon addresses".into()));
    }
    let endpoints: Result<Vec<Arc<dyn Endpoint>>, GkfsError> = addrs
        .iter()
        .map(|a| TcpEndpoint::connect(a).map(|e| e as Arc<dyn Endpoint>))
        .collect();
    let config = ClusterConfig::new(addrs.len()).with_chunk_size(chunk_size);
    GekkoClient::mount(endpoints?, &config)
}

fn run() -> Result<(), GkfsError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `lint` needs no deployment: it is an alias for `gkfs-lint`, so
    // developers get the analyzer from whichever binary is at hand.
    if args.first().map(String::as_str) == Some("lint") {
        std::process::exit(gkfs_lint::cli_main(&args[1..]));
    }
    let mut hosts = None;
    let mut chunk_size = gekkofs::DEFAULT_CHUNK_SIZE;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--hosts" => hosts = it.next(),
            "--chunk-size" => {
                chunk_size = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => {
                rest.push(a);
                rest.extend(it.by_ref());
            }
        }
    }
    let Some(hosts) = hosts else { usage() };
    if rest.is_empty() {
        usage();
    }

    let fs = connect(&hosts, chunk_size)?;
    let arg = |i: usize| -> &str {
        rest.get(i).map(String::as_str).unwrap_or_else(|| usage())
    };

    match arg(0) {
        "ls" => {
            for e in fs.readdir(arg(1))? {
                let kind = match e.kind {
                    gekkofs::FileKind::Directory => "d",
                    gekkofs::FileKind::File => "-",
                };
                println!("{kind} {:>12} {}", e.size, e.name);
            }
        }
        "stat" => {
            let m = fs.stat(arg(1))?;
            println!(
                "{} kind={:?} size={} mode={:o} ctime_ns={} mtime_ns={}",
                arg(1),
                m.kind,
                m.size,
                m.mode,
                m.ctime_ns,
                m.mtime_ns
            );
        }
        "mkdir" => fs.mkdir(arg(1), 0o755)?,
        "rmdir" => fs.rmdir(arg(1))?,
        "touch" => fs.create(arg(1), 0o644)?,
        "rm" => fs.unlink(arg(1))?,
        "put" => {
            let data = std::fs::read(arg(1))?;
            // Create if missing; overwrite from zero.
            let flags = gekkofs::OpenFlags::WRONLY.with_create().with_truncate();
            let h = fs.open_handle(arg(2), flags)?;
            h.pwrite(0, &data)?;
            h.close()?;
            println!("{} bytes -> {}", data.len(), arg(2));
        }
        "get" => {
            let h = fs.open_handle(arg(1), gekkofs::OpenFlags::RDONLY)?;
            let data = h.pread(0, h.size() as usize)?;
            std::fs::write(arg(2), &data)?;
            println!("{} bytes <- {}", data.len(), arg(1));
        }
        "cat" => {
            let h = fs.open_handle(arg(1), gekkofs::OpenFlags::RDONLY)?;
            let data = h.pread(0, h.size() as usize)?;
            use std::io::Write;
            std::io::stdout().write_all(&data)?;
        }
        "write" => {
            let text = arg(2).as_bytes();
            let h = fs.open_handle(arg(1), gekkofs::OpenFlags::WRONLY.with_create())?;
            h.pwrite(0, text)?;
            h.close()?;
        }
        "truncate" => {
            let size: u64 = arg(2).parse().map_err(|_| {
                GkfsError::InvalidArgument(format!("bad size {}", arg(2)))
            })?;
            fs.truncate(arg(1), size)?;
        }
        "fsck" => {
            let report = fs.fsck()?;
            println!(
                "checked {} files in {} directories",
                report.files_checked, report.directories_checked
            );
            for (node, path) in &report.orphan_chunks {
                println!("ORPHAN chunks on node {node}: {path}");
            }
            for path in &report.chunkless_files {
                println!("note: {path} has size > 0 but no chunks (sparse or lost)");
            }
            if report.is_clean() {
                println!("clean");
            } else if rest.get(1).map(String::as_str) == Some("--purge") {
                let n = fs.fsck_purge(&report)?;
                println!("purged {n} orphan chunk holdings");
            } else {
                std::process::exit(1);
            }
        }
        "df" => {
            let health = fs.node_health();
            for (i, s) in fs.cluster_stats()?.iter().enumerate() {
                println!(
                    "node {i}: {} metadata entries, {} B written, {} B read",
                    s.meta_entries, s.storage_write_bytes, s.storage_read_bytes
                );
                let mean_group = if s.kv_group_commits > 0 {
                    s.kv_group_commit_records as f64 / s.kv_group_commits as f64
                } else {
                    0.0
                };
                println!(
                    "        lsm: {} flushes, {} compactions, {} stalls ({} us), \
                     {} imm hits, {} bloom skips, group commit {:.1} rec/batch",
                    s.kv_flushes,
                    s.kv_compactions,
                    s.kv_stalls,
                    s.kv_stall_micros,
                    s.kv_imm_hits,
                    s.kv_bloom_skips,
                    mean_group
                );
                println!(
                    "        data: {} pool tasks, {} inline runs, fd cache \
                     {}/{} hit/miss, {} coalesced ops, {} reply copy B",
                    s.chunk_tasks_spawned,
                    s.chunk_inline_runs,
                    s.fd_cache_hits,
                    s.fd_cache_misses,
                    s.coalesced_ops,
                    s.read_reply_copy_bytes
                );
                if let Some(h) = health.get(i) {
                    println!(
                        "        health: breaker {} ({} consecutive failures), \
                         {} retries, {} transport failures, {} reconnects",
                        h.breaker, h.consecutive_failures, h.retries, h.failures, h.reconnects
                    );
                }
            }
            let st = fs.stats();
            use std::sync::atomic::Ordering::Relaxed;
            println!(
                "client: {} rpcs issued, write-back {} B buffered / {} coalesced \
                 flushes, {} size-cache hits, {} lease invalidations",
                st.rpcs_issued.load(Relaxed),
                st.wb_buffered_bytes.load(Relaxed),
                st.wb_flushes.load(Relaxed),
                st.size_cache_hits.load(Relaxed),
                st.lease_invalidations.load(Relaxed)
            );
        }
        other => {
            eprintln!("unknown command: {other}");
            usage();
        }
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("gkfs-cli: {e}");
        std::process::exit(1);
    }
}
