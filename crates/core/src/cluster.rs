//! Cluster deployment — "deployed in under 20 seconds on a 512 node
//! cluster by any user" (paper §I).
//!
//! Two deployment modes:
//!
//! * [`Cluster`] — N daemons in this process, clients connected through
//!   the zero-copy in-process transport. This is the configuration the
//!   test suite, benchmarks, and examples use: it runs the exact same
//!   daemon/client code as a multi-machine deployment, minus sockets.
//! * [`TcpCluster`] — N daemons serving real TCP sockets, clients
//!   connected through `TcpEndpoint`s. One per-machine process in a
//!   real deployment would run one daemon; here they may share a
//!   process for testing while still exercising the full wire path.

use gkfs_client::GekkoClient;
use gkfs_common::{ClusterConfig, DaemonConfig, Result};
use gkfs_daemon::Daemon;
use gkfs_rpc::{Endpoint, TcpEndpoint};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An in-process GekkoFS deployment.
pub struct Cluster {
    daemons: Vec<Arc<Daemon>>,
    config: ClusterConfig,
    deploy_time: Duration,
}

impl Cluster {
    /// Start one daemon per node with in-memory backends.
    pub fn deploy(config: ClusterConfig) -> Result<Cluster> {
        Self::deploy_with(config, |_node| DaemonConfig::default())
    }

    /// Start one daemon per node, with per-node daemon configuration
    /// (e.g. disk-backed roots).
    pub fn deploy_with(
        config: ClusterConfig,
        mut daemon_config: impl FnMut(usize) -> DaemonConfig,
    ) -> Result<Cluster> {
        let start = Instant::now();
        let daemons: Result<Vec<Arc<Daemon>>> = (0..config.nodes)
            .map(|n| {
                let mut dc = daemon_config(n);
                dc.chunk_size = config.chunk_size;
                Daemon::spawn(dc)
            })
            .collect();
        let daemons = daemons?;
        // Deployment handshake: every daemon answers a ping before the
        // cluster is considered up (what the paper's startup scripts
        // do across nodes).
        for d in &daemons {
            let ep = d.endpoint();
            ep.call(gkfs_rpc::Request::new(gkfs_rpc::Opcode::Ping, bytes::Bytes::new()))?
                .into_result()?;
        }
        let deploy_time = start.elapsed();
        Ok(Cluster {
            daemons,
            config,
            deploy_time,
        })
    }

    /// Start one daemon per node with state persisted under
    /// `root/<node-id>/` (the node-local SSD directory in the paper).
    pub fn deploy_on_disk(config: ClusterConfig, root: impl Into<PathBuf>) -> Result<Cluster> {
        let root = root.into();
        Self::deploy_with(config, move |n| DaemonConfig {
            root_dir: Some(root.join(format!("node-{n}"))),
            ..DaemonConfig::default()
        })
    }

    /// How long daemon startup + handshake took.
    pub fn deploy_time(&self) -> Duration {
        self.deploy_time
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.daemons.len()
    }

    /// The shared cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Mount the namespace: returns a client (one per application
    /// process in a real deployment; tests mount several to model
    /// multiple ranks).
    pub fn mount(&self) -> Result<GekkoClient> {
        self.mount_on(0)
    }

    /// Mount as a client co-located with daemon `node` (relevant for
    /// the `WriteLocal` distribution ablation).
    pub fn mount_on(&self, node: usize) -> Result<GekkoClient> {
        let endpoints: Vec<Arc<dyn Endpoint>> =
            self.daemons.iter().map(|d| d.endpoint()).collect();
        GekkoClient::mount_on(endpoints, &self.config, node)
    }

    /// Access a daemon directly (tests, stats).
    pub fn daemon(&self, node: usize) -> &Arc<Daemon> {
        &self.daemons[node]
    }

    /// Orderly shutdown of every daemon.
    pub fn shutdown(&self) {
        for d in &self.daemons {
            d.shutdown();
        }
    }
}

/// A GekkoFS deployment served over real TCP sockets.
pub struct TcpCluster {
    daemons: Vec<Arc<Daemon>>,
    addrs: Vec<std::net::SocketAddr>,
    config: ClusterConfig,
}

impl TcpCluster {
    /// Start one daemon per node, each bound to a loopback port.
    pub fn deploy(config: ClusterConfig) -> Result<TcpCluster> {
        let mut daemons = Vec::with_capacity(config.nodes);
        let mut addrs = Vec::with_capacity(config.nodes);
        for _ in 0..config.nodes {
            let dc = DaemonConfig {
                chunk_size: config.chunk_size,
                ..DaemonConfig::default()
            };
            let d = Daemon::spawn(dc)?;
            addrs.push(d.serve_tcp("127.0.0.1:0")?);
            daemons.push(d);
        }
        Ok(TcpCluster {
            daemons,
            addrs,
            config,
        })
    }

    /// Daemon addresses (the "hosts file" a real deployment shares).
    pub fn addrs(&self) -> &[std::net::SocketAddr] {
        &self.addrs
    }

    /// Mount over TCP — also usable from a different process given
    /// [`TcpCluster::addrs`].
    pub fn mount(&self) -> Result<GekkoClient> {
        Self::mount_remote(&self.addrs, &self.config)
    }

    /// Mount a namespace from daemon addresses alone.
    pub fn mount_remote(
        addrs: &[std::net::SocketAddr],
        config: &ClusterConfig,
    ) -> Result<GekkoClient> {
        let endpoints: Result<Vec<Arc<dyn Endpoint>>> = addrs
            .iter()
            .map(|a| {
                TcpEndpoint::connect(&a.to_string()).map(|e| e as Arc<dyn Endpoint>)
            })
            .collect();
        GekkoClient::mount(endpoints?, config)
    }

    /// Shutdown.
    pub fn shutdown(&self) {
        for d in &self.daemons {
            d.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkfs_common::OpenFlags;

    #[test]
    fn deploy_mount_use_shutdown() {
        let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
        assert_eq!(cluster.nodes(), 4);
        let fs = cluster.mount().unwrap();
        let fd = fs.open("/hello", OpenFlags::RDWR.with_create()).unwrap();
        fs.write(fd, b"cluster").unwrap();
        fs.close(fd).unwrap();
        let h = fs.open_handle("/hello", OpenFlags::RDONLY).unwrap();
        assert_eq!(h.pread(0, 10).unwrap(), b"cluster");
        drop(h);
        cluster.shutdown();
        assert!(fs.stat("/hello").is_err(), "daemons refuse after shutdown");
    }

    #[test]
    fn multiple_clients_share_the_namespace() {
        let cluster = Cluster::deploy(ClusterConfig::new(2)).unwrap();
        let a = cluster.mount().unwrap();
        let b = cluster.mount().unwrap();
        let ha = a.open_handle("/from-a", OpenFlags::WRONLY.with_create()).unwrap();
        ha.pwrite(0, b"written by a").unwrap();
        ha.close().unwrap();
        // Client B sees it immediately: single-file ops are strongly
        // consistent.
        assert_eq!(b.stat("/from-a").unwrap().size, 12);
        let hb = b.open_handle("/from-a", OpenFlags::RDONLY).unwrap();
        assert_eq!(hb.pread(0, 64).unwrap(), b"written by a");
        cluster.shutdown();
    }

    #[test]
    fn deploy_time_is_fast() {
        // The paper: < 20 s for 512 nodes. In-process with 64 nodes we
        // should be well under a second, and we record the number.
        let cluster = Cluster::deploy(ClusterConfig::new(64)).unwrap();
        assert!(
            cluster.deploy_time() < Duration::from_secs(20),
            "deploy took {:?}",
            cluster.deploy_time()
        );
        cluster.shutdown();
    }

    #[test]
    fn disk_backed_cluster_round_trips() {
        let dir = std::env::temp_dir().join(format!("gkfs-cluster-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cluster = Cluster::deploy_on_disk(ClusterConfig::new(2), &dir).unwrap();
        let fs = cluster.mount().unwrap();
        let h = fs.open_handle("/on-disk", OpenFlags::RDWR.with_create()).unwrap();
        h.pwrite(0, b"persistent bytes").unwrap();
        h.flush().unwrap();
        assert_eq!(h.pread(0, 64).unwrap(), b"persistent bytes");
        h.close().unwrap();
        // Chunk files exist on the real file system.
        let chunk_files = walk(&dir)
            .into_iter()
            .filter(|p| p.to_string_lossy().contains("chunks"))
            .count();
        assert!(chunk_files > 0, "expected chunk files under {dir:?}");
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn walk(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
        let mut out = Vec::new();
        if let Ok(rd) = std::fs::read_dir(dir) {
            for e in rd.flatten() {
                let p = e.path();
                if p.is_dir() {
                    out.extend(walk(&p));
                } else {
                    out.push(p);
                }
            }
        }
        out
    }

    #[test]
    fn tcp_cluster_full_path() {
        let cluster = TcpCluster::deploy(ClusterConfig::new(3)).unwrap();
        let fs = cluster.mount().unwrap();
        let h = fs.open_handle("/tcp", OpenFlags::RDWR.with_create()).unwrap();
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        h.pwrite(0, &payload).unwrap();
        h.flush().unwrap();
        assert_eq!(h.pread(0, payload.len()).unwrap(), payload);
        h.close().unwrap();
        // A second, independently connected client.
        let fs2 = TcpCluster::mount_remote(cluster.addrs(), &ClusterConfig::new(3)).unwrap();
        assert_eq!(fs2.stat("/tcp").unwrap().size, payload.len() as u64);
        cluster.shutdown();
    }
}
