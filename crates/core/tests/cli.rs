//! End-to-end test of the `gkfs-cli` binary against daemons serving
//! real TCP sockets.

use gekkofs::cluster::TcpCluster;
use gekkofs::ClusterConfig;
use std::process::Command;

fn cli(hosts: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_gkfs-cli"))
        .args(["--hosts", hosts])
        .args(args)
        .output()
        .expect("run gkfs-cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_full_session() {
    let cluster = TcpCluster::deploy(ClusterConfig::new(3)).unwrap();
    let hosts = cluster
        .addrs()
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");

    // mkdir + touch + ls
    assert!(cli(&hosts, &["mkdir", "/cli"]).0);
    assert!(cli(&hosts, &["touch", "/cli/empty"]).0);
    let (ok, stdout, _) = cli(&hosts, &["ls", "/cli"]);
    assert!(ok);
    assert!(stdout.contains("empty") && stdout.starts_with('-'), "ls output: {stdout}");

    // put / stat / cat / get round trip through local files.
    let dir = std::env::temp_dir().join(format!("gkfs-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let local_in = dir.join("in.bin");
    let local_out = dir.join("out.bin");
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    std::fs::write(&local_in, &payload).unwrap();

    let (ok, stdout, stderr) = cli(
        &hosts,
        &["put", local_in.to_str().unwrap(), "/cli/blob"],
    );
    assert!(ok, "put failed: {stderr}");
    assert!(stdout.contains("100000 bytes"), "{stdout}");

    let (ok, stdout, _) = cli(&hosts, &["stat", "/cli/blob"]);
    assert!(ok);
    assert!(stdout.contains("size=100000"), "stat: {stdout}");

    let (ok, _, stderr) = cli(
        &hosts,
        &["get", "/cli/blob", local_out.to_str().unwrap()],
    );
    assert!(ok, "get failed: {stderr}");
    assert_eq!(std::fs::read(&local_out).unwrap(), payload);

    // write + cat small text.
    assert!(cli(&hosts, &["write", "/cli/note", "hello-gekko"]).0);
    let (ok, stdout, _) = cli(&hosts, &["cat", "/cli/note"]);
    assert!(ok);
    assert_eq!(stdout, "hello-gekko");

    // truncate + df + cleanup.
    assert!(cli(&hosts, &["truncate", "/cli/blob", "5"]).0);
    let (_, stdout, _) = cli(&hosts, &["stat", "/cli/blob"]);
    assert!(stdout.contains("size=5"));
    let (ok, stdout, _) = cli(&hosts, &["df"]);
    assert!(ok);
    assert!(stdout.lines().count() >= 3, "df lists every node: {stdout}");

    assert!(cli(&hosts, &["rm", "/cli/blob"]).0);
    assert!(cli(&hosts, &["rm", "/cli/note"]).0);
    assert!(cli(&hosts, &["rm", "/cli/empty"]).0);
    assert!(cli(&hosts, &["rmdir", "/cli"]).0);

    // Errors propagate as nonzero exit + stderr.
    let (ok, _, stderr) = cli(&hosts, &["stat", "/cli/blob"]);
    assert!(!ok);
    assert!(stderr.contains("no such file"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).unwrap();
    cluster.shutdown();
}

#[test]
fn cli_reads_hosts_file_with_banners() {
    let cluster = TcpCluster::deploy(ClusterConfig::new(2)).unwrap();
    // A hosts file as a launcher would write it: "LISTENING addr" lines.
    let dir = std::env::temp_dir().join(format!("gkfs-cli-hosts-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let hosts_file = dir.join("hosts.txt");
    let contents: String = cluster
        .addrs()
        .iter()
        .map(|a| format!("LISTENING {a}\n"))
        .collect();
    std::fs::write(&hosts_file, contents).unwrap();

    assert!(cli(hosts_file.to_str().unwrap(), &["touch", "/via-file"]).0);
    let (ok, stdout, _) = cli(hosts_file.to_str().unwrap(), &["ls", "/"]);
    assert!(ok);
    assert!(stdout.contains("via-file"));

    std::fs::remove_dir_all(&dir).unwrap();
    cluster.shutdown();
}

#[test]
fn cli_fsck() {
    let cluster = TcpCluster::deploy(ClusterConfig::new(2)).unwrap();
    let hosts = cluster
        .addrs()
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    assert!(cli(&hosts, &["write", "/checked", "payload"]).0);
    let (ok, stdout, _) = cli(&hosts, &["fsck"]);
    assert!(ok, "clean namespace: {stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
    assert!(stdout.contains("checked 1 files"), "{stdout}");
    cluster.shutdown();
}

#[test]
fn cli_usage_and_bad_hosts() {
    let out = Command::new(env!("CARGO_BIN_EXE_gkfs-cli")).output().unwrap();
    assert!(!out.status.success());
    let (ok, _, _) = cli("127.0.0.1:1", &["ls", "/"]); // nothing listens there
    assert!(!ok);
}
