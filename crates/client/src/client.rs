//! The GekkoFS client: routing, chunking, and the POSIX-relaxed
//! operation set.
//!
//! Every operation resolves its target daemon(s) locally — *"each
//! client is able to independently resolve the responsible node for a
//! file system operation"* (§III-B-a) — so there is no metadata server
//! and no coordination:
//!
//! * metadata ops go to `distributor.locate_metadata(path)`;
//! * each data chunk goes to `distributor.locate_chunk(path, id)`;
//! * `readdir`, `unlink` (data), and `truncate` (data) broadcast to all
//!   daemons, because chunks and sibling entries are spread everywhere.
//!
//! Consistency follows the paper (§III-A): operations on one file are
//! strongly consistent (the owning daemon serializes them); directory
//! listings are eventually consistent; `rename`/links are unsupported;
//! nothing is cached except the optional write-size window from §IV-B.

use crate::filemap::{FileMap, OpenFile};
use crate::rpc::DaemonRing;
use crate::size_cache::SizeCache;
use crate::stat_cache::StatCache;
use crate::writeback::{Absorb, WbRun};
use bytes::Bytes;
use gkfs_common::chunk::{chunk_range, ChunkLayout};
use gkfs_common::distributor::{Distributor, NodeId};
use gkfs_common::path as gpath;
use gkfs_common::types::Dirent;
use gkfs_common::{ClusterConfig, FileKind, GkfsError, Metadata, OpenFlags, Result};
use gkfs_rpc::proto::{ChunkOp, DaemonStatsResp};
use gkfs_rpc::Endpoint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Client-side operation counters.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// create/mkdir operations issued.
    pub creates: AtomicU64,
    /// stat operations issued.
    pub stats: AtomicU64,
    /// unlink/rmdir operations issued.
    pub removes: AtomicU64,
    /// Write calls issued.
    pub write_ops: AtomicU64,
    /// Read calls issued.
    pub read_ops: AtomicU64,
    /// Total bytes written.
    pub bytes_written: AtomicU64,
    /// Total bytes read.
    pub bytes_read: AtomicU64,
    /// Size updates actually sent to metadata owners.
    pub size_updates_sent: AtomicU64,
    /// Size updates absorbed by the client cache (§IV-B).
    pub size_updates_buffered: AtomicU64,
    /// Logical RPCs issued to daemons (retries excluded). Shared with
    /// the [`DaemonRing`], which counts every operation at its single
    /// submission funnel — the number the RPC regression gate watches.
    pub rpcs_issued: Arc<AtomicU64>,
    /// Bytes absorbed by per-handle write-back buffers.
    pub wb_buffered_bytes: AtomicU64,
    /// Coalesced write-back batches flushed to daemons.
    pub wb_flushes: AtomicU64,
    /// Reads and seeks served from an open handle's cached size
    /// instead of a stat RPC (the killed per-read stat).
    pub size_cache_hits: AtomicU64,
    /// Lease-style invalidations applied to the TTL stat cache by
    /// local mutations (create/unlink/rmdir/truncate).
    pub lease_invalidations: AtomicU64,
}

/// Seek origin for [`GekkoClient::lseek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// Absolute offset (`SEEK_SET`).
    Set,
    /// Relative to the current position (`SEEK_CUR`).
    Cur,
    /// Relative to end of file (`SEEK_END`).
    End,
}

/// A mounted GekkoFS namespace, as seen by one client process.
pub struct GekkoClient {
    ring: DaemonRing,
    dist: Arc<dyn Distributor>,
    layout: ChunkLayout,
    files: FileMap,
    size_cache: SizeCache,
    stat_cache: Option<StatCache>,
    /// Per-handle write-back capacity in bytes (0 = disabled).
    wb_capacity: usize,
    stats: ClientStats,
}

fn now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

impl GekkoClient {
    /// Mount: connect the given per-daemon endpoints using the shared
    /// cluster configuration. Creates the root directory if missing.
    /// The client is assumed to run on node 0; use
    /// [`GekkoClient::mount_on`] when placement is locality-sensitive.
    pub fn mount(endpoints: Vec<Arc<dyn Endpoint>>, config: &ClusterConfig) -> Result<GekkoClient> {
        Self::mount_on(endpoints, config, 0)
    }

    /// Mount as a client co-located with daemon `local_node` — the
    /// node identity only matters for the `WriteLocal` distribution
    /// ablation, where a client's chunks land on its own daemon.
    pub fn mount_on(
        endpoints: Vec<Arc<dyn Endpoint>>,
        config: &ClusterConfig,
        local_node: NodeId,
    ) -> Result<GekkoClient> {
        if endpoints.len() != config.nodes {
            return Err(GkfsError::InvalidArgument(format!(
                "{} endpoints but config says {} nodes",
                endpoints.len(),
                config.nodes
            )));
        }
        if local_node >= config.nodes {
            return Err(GkfsError::InvalidArgument(format!(
                "local node {local_node} out of range 0..{}",
                config.nodes
            )));
        }
        let ring = DaemonRing::with_retry(endpoints, config.retry.clone());
        let stats = ClientStats {
            // One counter, two readers: the ring bumps it at its
            // submission funnel, `ClientStats` reports it.
            rpcs_issued: ring.rpc_counter(),
            ..ClientStats::default()
        };
        let client = GekkoClient {
            ring,
            dist: config.make_distributor_for(local_node),
            layout: ChunkLayout::new(config.chunk_size),
            files: FileMap::new(),
            size_cache: SizeCache::new(config.size_cache_ops),
            stat_cache: if config.stat_cache_ttl_ms > 0 {
                Some(StatCache::new(std::time::Duration::from_millis(
                    config.stat_cache_ttl_ms,
                )))
            } else {
                None
            },
            wb_capacity: config.write_back as usize,
            stats,
        };
        // Root directory: non-exclusive create on its owner.
        let root_owner = client.dist.locate_metadata(gpath::ROOT);
        client
            .ring
            .create(root_owner, gpath::ROOT, FileKind::Directory, 0o755, false, now_ns())?;
        gkfs_common::gkfs_info!(
            "mounted: {} nodes, chunk={} size_cache={} stat_cache={}ms",
            config.nodes,
            config.chunk_size,
            config.size_cache_ops,
            config.stat_cache_ttl_ms
        );
        Ok(client)
    }

    /// stat operations issued.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// The descriptor table (exposed for the preload ABI).
    pub fn files(&self) -> &FileMap {
        &self.files
    }

    /// Number of daemons in the mounted namespace.
    pub fn nodes(&self) -> usize {
        self.ring.nodes()
    }

    fn meta_owner(&self, path: &str) -> NodeId {
        self.dist.locate_metadata(path)
    }

    /// Lease-style invalidation hook for the TTL stat cache: every
    /// local mutation of `path`'s metadata revokes the cached entry, so
    /// the TTL only ever bounds staleness of *remote* changes. (With
    /// the cache disabled this is free.)
    fn revoke_lease(&self, path: &str) {
        if let Some(cache) = &self.stat_cache {
            cache.invalidate(path);
            self.stats
                .lease_invalidations
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    // ---------------------------------------------------------------
    // Metadata operations
    // ---------------------------------------------------------------

    /// Create a regular file (exclusive, like `O_CREAT|O_EXCL`).
    pub fn create(&self, path: &str, mode: u32) -> Result<()> {
        let path = gpath::normalize(path)?;
        self.stats.creates.fetch_add(1, Ordering::Relaxed);
        self.revoke_lease(&path);
        self.ring
            .create(self.meta_owner(&path), &path, FileKind::File, mode, true, now_ns())
    }

    /// Create a directory (exclusive).
    ///
    /// Note that GekkoFS' namespace is flat: parent directories are
    /// *not* required to exist (mdtest-style workloads create files
    /// wherever they like), matching the paper's "internally kept flat
    /// namespace".
    pub fn mkdir(&self, path: &str, mode: u32) -> Result<()> {
        let path = gpath::normalize(path)?;
        if path == gpath::ROOT {
            return Err(GkfsError::Exists);
        }
        self.stats.creates.fetch_add(1, Ordering::Relaxed);
        self.revoke_lease(&path);
        self.ring
            .create(self.meta_owner(&path), &path, FileKind::Directory, mode, true, now_ns())
    }

    /// Fetch metadata. A client with buffered size updates or buffered
    /// write-back bytes sees its own writes reflected (read-your-writes
    /// within one client).
    pub fn stat(&self, path: &str) -> Result<Metadata> {
        let path = gpath::normalize(path)?;
        self.stats.stats.fetch_add(1, Ordering::Relaxed);
        self.fetch_meta_merged(&path)
    }

    /// [`GekkoClient::fetch_meta`] merged with everything this client
    /// knows locally about the size: the §IV-B size-update window and
    /// any open handle's cached size (which includes unflushed
    /// write-back bytes).
    fn fetch_meta_merged(&self, path: &str) -> Result<Metadata> {
        let mut meta = self.fetch_meta(path)?;
        if let Some(local) = self.size_cache.peek(path) {
            meta.size = meta.size.max(local);
        }
        if let Some(f) = self.files.find_by_path(path) {
            meta.size = meta.size.max(f.effective_size());
        }
        Ok(meta)
    }

    /// Fetch metadata through the optional §V stat cache. Negative
    /// results (NotFound) are never cached — a create must be visible
    /// immediately.
    fn fetch_meta(&self, path: &str) -> Result<Metadata> {
        if let Some(cache) = &self.stat_cache {
            if let Some(m) = cache.get(path) {
                return Ok(m);
            }
            let m = self.ring.stat(self.meta_owner(path), path)?;
            cache.put(path, m.clone());
            return Ok(m);
        }
        self.ring.stat(self.meta_owner(path), path)
    }

    /// Remove a regular file: metadata from its owner, chunks from
    /// every daemon.
    pub fn unlink(&self, path: &str) -> Result<()> {
        let path = gpath::normalize(path)?;
        self.stats.removes.fetch_add(1, Ordering::Relaxed);
        self.revoke_lease(&path);
        let meta = self.ring.stat(self.meta_owner(&path), &path)?;
        if meta.is_dir() {
            return Err(GkfsError::IsDirectory);
        }
        self.ring.remove_meta(self.meta_owner(&path), &path)?;
        // Zero-byte files (the mdtest workload) hold no chunks: skip
        // the data fan-out entirely. This is what lets removes scale
        // in §IV-A. Otherwise target exactly the daemons that can own
        // one of the file's chunks — the client derives the set from
        // the size and the distributor, no state needed.
        if meta.size > 0 {
            let chunks = self.layout.chunk_count(meta.size);
            let mut targets: Vec<NodeId> = (0..chunks)
                .map(|c| self.dist.locate_chunk(&path, c))
                .collect();
            targets.sort_unstable();
            targets.dedup();
            // Submit the remove to every holder, then wait — the
            // whole fan-out overlaps on the wire and shares one
            // operation deadline.
            let deadline = self.ring.op_deadline();
            let inflight = targets
                .into_iter()
                .map(|n| self.ring.remove_chunks_nb(n, &path))
                .collect::<Vec<_>>();
            for fut in inflight {
                fut?.wait_deadline(deadline)?;
            }
        }
        Ok(())
    }

    /// Remove an empty directory.
    pub fn rmdir(&self, path: &str) -> Result<()> {
        let path = gpath::normalize(path)?;
        if path == gpath::ROOT {
            return Err(GkfsError::InvalidArgument("cannot remove root".into()));
        }
        self.stats.removes.fetch_add(1, Ordering::Relaxed);
        self.revoke_lease(&path);
        let meta = self.ring.stat(self.meta_owner(&path), &path)?;
        if !meta.is_dir() {
            return Err(GkfsError::NotDirectory);
        }
        // Emptiness is checked across all daemons. This is the paper's
        // eventual-consistency caveat: a concurrent create can slip in.
        let listings = self.ring.broadcast(|n| self.ring.readdir_nb(n, &path));
        for l in listings {
            if !l?.is_empty() {
                return Err(GkfsError::NotEmpty);
            }
        }
        self.ring.remove_meta(self.meta_owner(&path), &path)?;
        Ok(())
    }

    /// List a directory: broadcast prefix scans, merge, sort.
    /// Eventually consistent (§III-A: "GekkoFS does not guarantee to
    /// return the current state of the directory").
    pub fn readdir(&self, path: &str) -> Result<Vec<Dirent>> {
        let path = gpath::normalize(path)?;
        let meta = self.ring.stat(self.meta_owner(&path), &path)?;
        if !meta.is_dir() {
            return Err(GkfsError::NotDirectory);
        }
        let listings = self.ring.broadcast(|n| self.ring.readdir_nb(n, &path));
        let mut all = Vec::new();
        for l in listings {
            all.extend(l?);
        }
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all.dedup_by(|a, b| a.name == b.name);
        Ok(all)
    }

    /// Truncate (or extend) a file to `new_size`.
    pub fn truncate(&self, path: &str, new_size: u64) -> Result<()> {
        let path = gpath::normalize(path)?;
        // Program order: writes buffered before this truncate must land
        // before it applies, so force out every open handle's run.
        for f in self.files.open_files() {
            if f.path == path {
                let run = f.wb.lock().take();
                if let Some(run) = run {
                    self.flush_run(&f, run)?;
                }
            }
        }
        // Pending buffered size updates for this path are now moot —
        // and so are any buffered write-back bytes an open handle holds
        // below the new size (flushing them would resurrect truncated
        // data); the ones above it the caller flushes first via
        // [`FileHandle::truncate`].
        self.size_cache.drain(&path);
        self.revoke_lease(&path);
        self.ring
            .truncate_meta(self.meta_owner(&path), &path, new_size, now_ns())?;
        let (keep_chunk, keep_bytes) = if new_size == 0 {
            (0, 0)
        } else {
            let last = self.layout.chunk_of(new_size - 1);
            (last, new_size - last * self.layout.chunk_size)
        };
        let results = self
            .ring
            .broadcast(|n| self.ring.truncate_chunks_nb(n, &path, keep_chunk, keep_bytes));
        for r in results {
            r?;
        }
        // Open handles snap to the authoritative new size.
        for f in self.files.open_files() {
            if f.path == path {
                f.set_cached_size(new_size);
            }
        }
        Ok(())
    }

    /// Renames are deliberately unsupported (§III-A).
    pub fn rename(&self, _from: &str, _to: &str) -> Result<()> {
        Err(GkfsError::Unsupported("rename"))
    }

    /// Hard links are deliberately unsupported (§III-A).
    pub fn link(&self, _from: &str, _to: &str) -> Result<()> {
        Err(GkfsError::Unsupported("link"))
    }

    /// Symbolic links are deliberately unsupported (§III-A).
    pub fn symlink(&self, _from: &str, _to: &str) -> Result<()> {
        Err(GkfsError::Unsupported("symlink"))
    }

    // ---------------------------------------------------------------
    // Descriptor-based operations
    // ---------------------------------------------------------------

    /// Open (optionally creating) a file, returning a GekkoFS fd.
    ///
    /// The descriptor is a registered [`FileHandle`]: it shares the
    /// same open-state record (cached size, write-back buffer) that
    /// [`GekkoClient::open_handle`] hands out directly.
    pub fn open(&self, path: &str, flags: OpenFlags) -> Result<i32> {
        let file = self.open_file(path, flags)?;
        Ok(self.files.insert_arc(file))
    }

    /// Open (optionally creating) a file as an explicit [`FileHandle`]
    /// — the primary I/O surface of the client. The handle carries the
    /// open-time size (no stat RPC per read) and, when
    /// [`ClusterConfig::with_write_back`] enables it, a write-back
    /// buffer coalescing small sequential writes.
    pub fn open_handle(&self, path: &str, flags: OpenFlags) -> Result<FileHandle<'_>> {
        let file = self.open_file(path, flags)?;
        // Register the open file in the descriptor table so path-based
        // lookups (the deprecated shims, same-client stat overlays, and
        // truncate's buffered-write ordering) see this handle's state.
        let reg = self.files.insert_arc(Arc::clone(&file));
        Ok(FileHandle {
            client: self,
            file,
            reg: Some(reg),
        })
    }

    /// Borrow an existing descriptor as a [`FileHandle`] view. The view
    /// shares the descriptor's offset, cached size, and write-back
    /// buffer, but never flushes on drop — `close(fd)` owns that.
    pub fn handle(&self, fd: i32) -> Result<FileHandle<'_>> {
        Ok(FileHandle {
            client: self,
            file: self.files.get(fd)?,
            reg: None,
        })
    }

    /// The open-path protocol shared by [`GekkoClient::open`] and
    /// [`GekkoClient::open_handle`].
    fn open_file(&self, path: &str, flags: OpenFlags) -> Result<Arc<OpenFile>> {
        let path = gpath::normalize(path)?;
        let (kind, mut size) = if flags.create {
            self.stats.creates.fetch_add(1, Ordering::Relaxed);
            self.revoke_lease(&path);
            self.ring.create(
                self.meta_owner(&path),
                &path,
                FileKind::File,
                0o644,
                flags.exclusive,
                now_ns(),
            )?;
            if flags.exclusive {
                // Freshly created: must be an empty file — no extra
                // stat on the mdtest hot path.
                (FileKind::File, 0)
            } else {
                // Non-exclusive create may have hit an existing entry
                // of either kind; `open(dir, O_CREAT|O_WRONLY)` must
                // fail with EISDIR, not scribble on a directory.
                let meta = self.fetch_meta_merged(&path)?;
                if meta.is_dir() && flags.write {
                    return Err(GkfsError::IsDirectory);
                }
                (meta.kind, meta.size)
            }
        } else {
            let meta = self.fetch_meta_merged(&path)?;
            if meta.is_dir() && flags.write {
                return Err(GkfsError::IsDirectory);
            }
            (meta.kind, meta.size)
        };
        if flags.truncate && kind == FileKind::File {
            self.truncate(&path, 0)?;
            size = 0;
        }
        // Write-back only makes sense on writable regular files.
        let wb_capacity = if kind == FileKind::File && flags.write {
            self.wb_capacity
        } else {
            0
        };
        let file = Arc::new(OpenFile::with_state(path, flags, kind, size, wb_capacity));
        if flags.append {
            // O_APPEND: position at the open-time EOF — the size the
            // open already learned, not another stat RPC.
            file.seek_to(size);
        }
        Ok(file)
    }

    /// Close a descriptor: flush its write-back buffer and any buffered
    /// size update.
    pub fn close(&self, fd: i32) -> Result<()> {
        let file = self.files.remove(fd)?;
        FileHandle {
            client: self,
            file,
            reg: None,
        }
        .flush()
    }

    /// `dup(2)`.
    pub fn dup(&self, fd: i32) -> Result<i32> {
        self.files.dup(fd)
    }

    /// Reposition a descriptor. `SEEK_END` resolves against the
    /// handle's cached size — no stat RPC.
    pub fn lseek(&self, fd: i32, offset: i64, whence: Whence) -> Result<u64> {
        self.handle(fd)?.seek(offset, whence)
    }

    /// Write at the current position, advancing it.
    pub fn write(&self, fd: i32, data: &[u8]) -> Result<usize> {
        self.handle(fd)?.write(data)
    }

    /// Positional write (`pwrite`); does not move the descriptor.
    pub fn pwrite(&self, fd: i32, offset: u64, data: &[u8]) -> Result<usize> {
        self.handle(fd)?.pwrite(offset, data)
    }

    /// Read from the current position, advancing by the bytes returned.
    pub fn read(&self, fd: i32, len: usize) -> Result<Vec<u8>> {
        self.handle(fd)?.read(len)
    }

    /// Positional read (`pread`); does not move the descriptor.
    pub fn pread(&self, fd: i32, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.handle(fd)?.pread(offset, len)
    }

    /// Flush this descriptor's write-back buffer and buffered size
    /// updates to the daemons.
    pub fn fsync(&self, fd: i32) -> Result<()> {
        self.handle(fd)?.flush()
    }

    // ---------------------------------------------------------------
    // Data path
    // ---------------------------------------------------------------

    /// Positional write by path — a compatibility shim over the handle
    /// API. When the path is already open, the bytes route through that
    /// handle (sharing its write-back buffer and cached size);
    /// otherwise this is a direct write-through.
    #[deprecated(
        note = "open a FileHandle (GekkoClient::open_handle) and use pwrite — \
                see DESIGN.md \"Open handles, write-back and leases\""
    )]
    pub fn write_at_path(&self, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        let path = gpath::normalize(path)?;
        if let Some(file) = self.files.find_by_path(&path) {
            if file.flags.write {
                let h = FileHandle {
                    client: self,
                    file,
                    reg: None,
                };
                h.pwrite(offset, data)?;
                return Ok(());
            }
        }
        self.stats.write_ops.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        if data.is_empty() {
            // POSIX: a zero-length write has no effect — in particular
            // it must not extend the file via a size update.
            return Ok(());
        }
        self.write_through(&path, offset, data)
    }

    /// The raw write path: split into chunks, group by owning daemon,
    /// fan out in parallel, then update the file size at the metadata
    /// owner (possibly through the §IV-B cache). Expects a normalized
    /// path and counts no client ops — callers do.
    fn write_through(&self, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        {
            let pieces = chunk_range(self.layout, offset, data.len() as u64);
            // Group chunk-pieces by their owning daemon, gathering each
            // daemon's bulk buffer (the scatter/gather list an RDMA
            // transport would build).
            let mut per_node: HashMap<NodeId, (Vec<ChunkOp>, Vec<u8>)> = HashMap::new();
            for p in &pieces {
                let node = self.dist.locate_chunk(path, p.chunk_id);
                let entry = per_node.entry(node).or_default();
                entry.0.push(ChunkOp {
                    chunk_id: p.chunk_id,
                    offset: p.offset,
                    len: p.len,
                });
                entry
                    .1
                    .extend_from_slice(&data[p.buf_offset as usize..(p.buf_offset + p.len) as usize]);
            }
            self.fan_out_writes(path, per_node)?;
        }

        // Size update to the metadata owner.
        let candidate = offset + data.len() as u64;
        if let Some(cache) = &self.stat_cache {
            cache.bump_size(path, candidate, now_ns());
        }
        match self.size_cache.record(path, candidate, now_ns()) {
            Some(pending) => {
                self.stats.size_updates_sent.fetch_add(1, Ordering::Relaxed);
                self.ring.update_size(
                    self.meta_owner(&pending.path),
                    &pending.path,
                    pending.size,
                    pending.mtime_ns,
                )?;
            }
            None => {
                self.stats
                    .size_updates_buffered
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    fn fan_out_writes(
        &self,
        path: &str,
        per_node: HashMap<NodeId, (Vec<ChunkOp>, Vec<u8>)>,
    ) -> Result<()> {
        if per_node.len() == 1 {
            if let Some((node, (ops, bulk))) = per_node.into_iter().next() {
                return self.ring.write_chunks(node, path, ops, Bytes::from(bulk));
            }
            return Ok(());
        }
        // Pipelined fan-out: submit every daemon's batch, then wait
        // for all the replies under one shared deadline — the striped
        // write gets a single time budget, not N stacked timeouts.
        let deadline = self.ring.op_deadline();
        let inflight = per_node
            .into_iter()
            .map(|(node, (ops, bulk))| {
                self.ring.write_chunks_nb(node, path, ops, Bytes::from(bulk))
            })
            .collect::<Vec<_>>();
        for fut in inflight {
            fut?.wait_deadline(deadline)?;
        }
        Ok(())
    }

    /// Positional read by path — a compatibility shim over the handle
    /// API. When the path is already open for reading, the read routes
    /// through that handle: its cached size answers the EOF question
    /// (no stat round trip — the "double stat" deviation is gone) and
    /// buffered write-back bytes overlay the result.
    #[deprecated(
        note = "open a FileHandle (GekkoClient::open_handle) and use pread — \
                see DESIGN.md \"Open handles, write-back and leases\""
    )]
    pub fn read_at_path(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let path = gpath::normalize(path)?;
        if let Some(file) = self.files.find_by_path(&path) {
            if file.flags.read && file.kind == FileKind::File {
                let h = FileHandle {
                    client: self,
                    file,
                    reg: None,
                };
                return h.pread(offset, len as usize);
            }
            // A write-only handle can't serve the read, but its
            // buffered bytes must be visible to it: flush first.
            let run = file.wb.lock().take();
            if let Some(run) = run {
                self.flush_run(&file, run)?;
            }
        }
        self.stats.read_ops.fetch_add(1, Ordering::Relaxed);
        let size = {
            let meta = self.fetch_meta_merged(&path)?;
            if meta.is_dir() {
                return Err(GkfsError::IsDirectory);
            }
            meta.size
        };
        if offset >= size || len == 0 {
            return Ok(Vec::new());
        }
        let effective = len.min(size - offset);
        let out = self.read_scatter(&path, offset, effective)?;
        self.stats
            .bytes_read
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// The raw scatter-gather read of `[offset, offset + len)`; the
    /// caller has already clamped `len` to EOF. Holes read as zeros.
    fn read_scatter(&self, path: &str, offset: u64, effective: u64) -> Result<Vec<u8>> {
        let pieces = chunk_range(self.layout, offset, effective);
        let mut per_node: HashMap<NodeId, Vec<(u64, ChunkOp)>> = HashMap::new();
        for p in &pieces {
            let node = self.dist.locate_chunk(path, p.chunk_id);
            per_node.entry(node).or_default().push((
                p.buf_offset,
                ChunkOp {
                    chunk_id: p.chunk_id,
                    offset: p.offset,
                    len: p.len,
                },
            ));
        }

        // Holes read as zeros: pre-zero the buffer, copy what returns.
        // The gather submits one read batch per daemon before waiting
        // on any reply, so every daemon streams its chunks back
        // concurrently.
        let mut out = vec![0u8; effective as usize];
        let deadline = self.ring.op_deadline();
        let inflight: Vec<_> = per_node
            .into_iter()
            .map(|(node, batch)| {
                let ops: Vec<ChunkOp> = batch.iter().map(|(_, op)| *op).collect();
                (batch, self.ring.read_chunks_nb(node, path, ops))
            })
            .collect();
        for (batch, fut) in inflight {
            let (lens, bulk) = fut?.wait_deadline(deadline)?;
            let mut cursor = 0usize;
            for ((buf_off, op), got) in batch.iter().zip(lens.iter()) {
                let got = *got as usize;
                debug_assert!(got as u64 <= op.len);
                out[*buf_off as usize..*buf_off as usize + got]
                    .copy_from_slice(&bulk[cursor..cursor + got]);
                cursor += got;
            }
        }
        Ok(out)
    }

    /// Send one displaced or forced write-back run to the daemons.
    /// Called with no locks held — the run was taken out under the
    /// buffer lock and the guard dropped before any RPC (GKL002).
    fn flush_run(&self, file: &OpenFile, run: WbRun) -> Result<()> {
        self.stats.wb_flushes.fetch_add(1, Ordering::Relaxed);
        let end = run.end();
        self.write_through(&file.path, run.start, &run.data)?;
        file.grow_cached_size(end);
        Ok(())
    }

    // ---------------------------------------------------------------
    // Maintenance
    // ---------------------------------------------------------------

    /// Flush the buffered size update for one path, if any.
    pub fn flush_size(&self, path: &str) -> Result<()> {
        if let Some(p) = self.size_cache.drain(path) {
            self.stats.size_updates_sent.fetch_add(1, Ordering::Relaxed);
            self.ring
                .update_size(self.meta_owner(&p.path), &p.path, p.size, p.mtime_ns)?;
        }
        Ok(())
    }

    /// Flush all buffered state (unmount): every open handle's
    /// write-back run, then all buffered size updates — one update per
    /// dirty file, all submitted before any reply is awaited.
    pub fn flush_all(&self) -> Result<()> {
        // Buffer flushes first: they enqueue the size updates the
        // drain below sends.
        for file in self.files.open_files() {
            let run = file.wb.lock().take();
            if let Some(run) = run {
                self.flush_run(&file, run)?;
            }
        }
        let deadline = self.ring.op_deadline();
        let inflight: Vec<_> = self
            .size_cache
            .drain_all()
            .into_iter()
            .map(|p| {
                self.stats.size_updates_sent.fetch_add(1, Ordering::Relaxed);
                self.ring
                    .update_size_nb(self.meta_owner(&p.path), &p.path, p.size, p.mtime_ns)
            })
            .collect();
        for fut in inflight {
            fut?.wait_deadline(deadline)?;
        }
        Ok(())
    }

    /// Aggregate daemon statistics across the cluster.
    pub fn cluster_stats(&self) -> Result<Vec<DaemonStatsResp>> {
        self.ring
            .broadcast(|n| self.ring.daemon_stats_nb(n))
            .into_iter()
            .collect()
    }

    /// Client-side fault-handling health per daemon: breaker state,
    /// retry/failure counters, transport reconnects. Unlike
    /// [`GekkoClient::cluster_stats`] this needs no RPC — it reports
    /// what *this* client has observed of each daemon.
    pub fn node_health(&self) -> Vec<crate::rpc::NodeHealthSnapshot> {
        self.ring.health_snapshot()
    }

    /// Consistency check across the whole namespace (the `fsck` admin
    /// operation):
    ///
    /// * **orphan chunks** — a daemon holds chunk files for a path
    ///   with no metadata entry (e.g. a remove whose data fan-out was
    ///   interrupted). These waste SSD space and are safe to purge.
    /// * **chunkless files** — metadata says `size > 0` but no daemon
    ///   holds any chunk. Legitimate for files extended purely by
    ///   `truncate` (they read as zeros), so reported for inspection,
    ///   not treated as damage.
    ///
    /// Like `readdir`, the scan is eventually consistent: run it on a
    /// quiescent namespace for exact results.
    pub fn fsck(&self) -> Result<FsckReport> {
        // 1. Global chunk inventory.
        let mut chunk_holders: HashMap<String, Vec<NodeId>> = HashMap::new();
        for (node, inv) in self
            .ring
            .broadcast(|n| self.ring.chunk_inventory_nb(n))
            .into_iter()
            .enumerate()
        {
            for (path, _count) in inv? {
                chunk_holders.entry(path).or_default().push(node);
            }
        }

        // 2. Walk the namespace.
        let mut files: HashMap<String, u64> = HashMap::new();
        let mut stack = vec![gpath::ROOT.to_string()];
        let mut dirs = 0usize;
        while let Some(dir) = stack.pop() {
            dirs += 1;
            for e in self.readdir(&dir)? {
                let p = gpath::join(&dir, &e.name);
                match e.kind {
                    FileKind::Directory => stack.push(p),
                    FileKind::File => {
                        files.insert(p, e.size);
                    }
                }
            }
        }

        // 3. Cross-reference.
        let mut orphan_chunks = Vec::new();
        for (path, nodes) in &chunk_holders {
            if !files.contains_key(path) {
                for n in nodes {
                    orphan_chunks.push((*n, path.clone()));
                }
            }
        }
        orphan_chunks.sort();
        let mut chunkless_files: Vec<String> = files
            .iter()
            .filter(|(p, size)| **size > 0 && !chunk_holders.contains_key(*p))
            .map(|(p, _)| p.clone())
            .collect();
        chunkless_files.sort();

        Ok(FsckReport {
            files_checked: files.len(),
            directories_checked: dirs,
            orphan_chunks,
            chunkless_files,
        })
    }

    /// Purge the orphan chunks a previous [`GekkoClient::fsck`] found.
    /// Returns how many (node, path) holdings were removed.
    pub fn fsck_purge(&self, report: &FsckReport) -> Result<usize> {
        let deadline = self.ring.op_deadline();
        let inflight: Vec<_> = report
            .orphan_chunks
            .iter()
            .map(|(node, path)| self.ring.remove_chunks_nb(*node, path))
            .collect();
        for fut in inflight {
            fut?.wait_deadline(deadline)?;
        }
        Ok(report.orphan_chunks.len())
    }
}

/// An explicit open-file handle — the primary I/O surface of the
/// client ([`GekkoClient::open_handle`]).
///
/// The handle carries what GekkoFS keeps in its client-side open-file
/// table: the open flags, a cached size seeded by the open-time stat
/// (so reads and `SEEK_END` never pay a stat RPC), and an optional
/// write-back buffer that coalesces small sequential writes into
/// chunk-aligned batches ([`ClusterConfig::with_write_back`]).
///
/// Consistency contract: reads through the handle see its own buffered
/// writes immediately (read-your-writes), and `stat` on the same
/// client sees the buffered tail in the size; *other* clients see the
/// bytes only after `flush`/`fsync`/`close` — the same relaxation the
/// paper's §IV-B size cache already makes. Cross-client growth of the
/// file becomes visible on re-open.
///
/// Handles from [`GekkoClient::open_handle`] flush on drop
/// (best-effort, errors swallowed); call [`FileHandle::close`] to
/// observe flush errors. Views from [`GekkoClient::handle`] never
/// flush on drop — the descriptor table owns their lifecycle.
pub struct FileHandle<'c> {
    client: &'c GekkoClient,
    file: Arc<OpenFile>,
    /// The descriptor-table registration for handles that own their
    /// open file (`open_handle`). `None` for borrowed views
    /// ([`GekkoClient::handle`]) — those neither flush on drop nor
    /// deregister, `close(fd)` owns both.
    reg: Option<i32>,
}

impl FileHandle<'_> {
    /// The normalized path this handle is open on.
    pub fn path(&self) -> &str {
        &self.file.path
    }

    /// File or directory?
    pub fn kind(&self) -> FileKind {
        self.file.kind
    }

    /// The file size as this handle knows it: open-time size, grown by
    /// this handle's writes, including any unflushed write-back tail.
    /// Never issues an RPC.
    pub fn size(&self) -> u64 {
        self.client
            .stats
            .size_cache_hits
            .fetch_add(1, Ordering::Relaxed);
        self.file.effective_size()
    }

    /// Full metadata (one stat, possibly served by the TTL cache),
    /// with the size merged against this handle's local knowledge.
    pub fn stat(&self) -> Result<Metadata> {
        let mut meta = self.client.stat(&self.file.path)?;
        meta.size = meta.size.max(self.file.effective_size());
        Ok(meta)
    }

    /// Positional write; does not move the handle's offset. Small
    /// writes coalesce in the write-back buffer when enabled.
    pub fn pwrite(&self, offset: u64, data: &[u8]) -> Result<usize> {
        let c = self.client;
        if !self.file.flags.write {
            return Err(GkfsError::BadFileDescriptor);
        }
        c.stats.write_ops.fetch_add(1, Ordering::Relaxed);
        c.stats
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        if data.is_empty() {
            // POSIX: a zero-length write has no effect — in particular
            // it must not extend the file via a size update.
            return Ok(0);
        }
        let end = offset + data.len() as u64;
        // Decide under the buffer lock; every RPC happens after the
        // guard drops (GKL002).
        let (flush_first, through, ready) = {
            let mut wb = self.file.wb.lock();
            match wb.offer(offset, data) {
                Absorb::Buffered { flush_first } => {
                    let ready = if wb.full() { wb.take() } else { None };
                    (flush_first, false, ready)
                }
                Absorb::Through { flush_first } => (flush_first, true, None),
            }
        };
        if let Some(run) = flush_first {
            c.flush_run(&self.file, run)?;
        }
        if through {
            c.write_through(&self.file.path, offset, data)?;
            self.file.grow_cached_size(end);
        } else {
            c.stats
                .wb_buffered_bytes
                .fetch_add(data.len() as u64, Ordering::Relaxed);
            // Buffered bytes stay visible to same-client stats.
            if let Some(cache) = &c.stat_cache {
                cache.bump_size(&self.file.path, end, now_ns());
            }
        }
        if let Some(run) = ready {
            c.flush_run(&self.file, run)?;
        }
        Ok(data.len())
    }

    /// Write at the current offset, advancing it. `O_APPEND` handles
    /// position at this handle's view of EOF — no stat RPC; concurrent
    /// appenders from different clients may interleave (no distributed
    /// locking, §III-A).
    pub fn write(&self, data: &[u8]) -> Result<usize> {
        if !self.file.flags.write {
            return Err(GkfsError::BadFileDescriptor);
        }
        let offset = if self.file.flags.append {
            let size = self.file.effective_size();
            self.file.seek_to(size + data.len() as u64);
            size
        } else {
            self.file.advance(data.len() as u64)
        };
        self.pwrite(offset, data)?;
        Ok(data.len())
    }

    /// Positional read; does not move the handle's offset. EOF comes
    /// from the handle's cached size (no stat RPC) and buffered
    /// write-back bytes overlay the daemons' data.
    pub fn pread(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let c = self.client;
        if !self.file.flags.read {
            return Err(GkfsError::BadFileDescriptor);
        }
        if self.file.kind == FileKind::Directory {
            return Err(GkfsError::IsDirectory);
        }
        c.stats.read_ops.fetch_add(1, Ordering::Relaxed);
        // Snapshot the buffered run once: the same bytes answer the
        // EOF question and the overlay below, even if a concurrent
        // flush empties the buffer in between.
        let overlay = self.file.wb.lock().snapshot();
        let size = self
            .file
            .cached_size()
            .max(overlay.as_ref().map_or(0, |r| r.end()));
        c.stats
            .size_cache_hits
            .fetch_add(1, Ordering::Relaxed);
        if offset >= size || len == 0 {
            return Ok(Vec::new());
        }
        let effective = (len as u64).min(size - offset);
        let mut out = c.read_scatter(&self.file.path, offset, effective)?;
        if let Some(run) = overlay {
            let lo = offset.max(run.start);
            let hi = (offset + effective).min(run.end());
            if lo < hi {
                let src = (lo - run.start) as usize;
                let dst = (lo - offset) as usize;
                let n = (hi - lo) as usize;
                out[dst..dst + n].copy_from_slice(&run.data[src..src + n]);
            }
        }
        c.stats
            .bytes_read
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Read from the current offset, advancing by the bytes returned.
    pub fn read(&self, len: usize) -> Result<Vec<u8>> {
        if !self.file.flags.read {
            return Err(GkfsError::BadFileDescriptor);
        }
        if self.file.kind == FileKind::Directory {
            return Err(GkfsError::IsDirectory);
        }
        let size = self.file.effective_size();
        let pos = self.file.pos();
        let avail = size.saturating_sub(pos).min(len as u64);
        let start = self.file.advance(avail);
        self.pread(start, avail as usize)
    }

    /// Reposition the handle. `SEEK_END` resolves against the cached
    /// size — no stat RPC.
    pub fn seek(&self, offset: i64, whence: Whence) -> Result<u64> {
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => self.file.pos() as i64,
            Whence::End => self.size() as i64,
        };
        let target = base + offset;
        if target < 0 {
            return Err(GkfsError::InvalidArgument("seek before start".into()));
        }
        Ok(self.file.seek_to(target as u64))
    }

    /// Force the write-back buffer and any buffered size update out to
    /// the daemons. After `flush` returns Ok, every byte written
    /// through this handle is visible to every client.
    pub fn flush(&self) -> Result<()> {
        let run = self.file.wb.lock().take();
        if let Some(run) = run {
            self.client.flush_run(&self.file, run)?;
        }
        self.client.flush_size(&self.file.path)
    }

    /// `fsync(2)` semantics: [`FileHandle::flush`].
    pub fn fsync(&self) -> Result<()> {
        self.flush()
    }

    /// Truncate (or extend) the file, flushing buffered writes first
    /// (program order: writes issued before the truncate land before
    /// it applies).
    pub fn truncate(&self, new_size: u64) -> Result<()> {
        self.client.truncate(&self.file.path, new_size)
    }

    /// Close the handle, flushing buffered state and reporting errors
    /// (the drop flush cannot).
    pub fn close(mut self) -> Result<()> {
        if let Some(fd) = self.reg.take() {
            let _ = self.client.files.remove(fd);
        }
        self.flush()
    }
}

impl Drop for FileHandle<'_> {
    fn drop(&mut self) {
        if let Some(fd) = self.reg.take() {
            let _ = self.client.files.remove(fd);
            // Best-effort: close() is the error-reporting path.
            let _ = self.flush();
        }
    }
}

/// Outcome of [`GekkoClient::fsck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Regular files examined.
    pub files_checked: usize,
    /// Directories walked.
    pub directories_checked: usize,
    /// `(daemon, path)` pairs holding chunks with no metadata entry.
    pub orphan_chunks: Vec<(NodeId, String)>,
    /// Files whose size is positive but which have no chunks anywhere
    /// (sparse-by-truncate, or lost data).
    pub chunkless_files: Vec<String>,
}

impl FsckReport {
    /// No orphans found (chunkless files are informational).
    pub fn is_clean(&self) -> bool {
        self.orphan_chunks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkfs_daemon::Daemon;

    fn cluster(nodes: usize) -> (Vec<Arc<Daemon>>, GekkoClient) {
        cluster_with(nodes, ClusterConfig::new(nodes))
    }

    fn cluster_with(nodes: usize, config: ClusterConfig) -> (Vec<Arc<Daemon>>, GekkoClient) {
        let daemons: Vec<Arc<Daemon>> = (0..nodes)
            .map(|_| Daemon::spawn(gkfs_common::DaemonConfig::default()).unwrap())
            .collect();
        let endpoints: Vec<Arc<dyn Endpoint>> = daemons.iter().map(|d| d.endpoint()).collect();
        let client = GekkoClient::mount(endpoints, &config).unwrap();
        (daemons, client)
    }

    #[test]
    fn create_stat_unlink() {
        let (_d, c) = cluster(4);
        c.create("/file", 0o644).unwrap();
        let m = c.stat("/file").unwrap();
        assert_eq!(m.kind, FileKind::File);
        assert_eq!(m.size, 0);
        assert!(matches!(c.create("/file", 0o644), Err(GkfsError::Exists)));
        c.unlink("/file").unwrap();
        assert!(matches!(c.stat("/file"), Err(GkfsError::NotFound)));
    }

    #[test]
    fn write_read_roundtrip_single_chunk() {
        let (_d, c) = cluster(4);
        let h = c.open_handle("/f", OpenFlags::RDWR.with_create()).unwrap();
        h.pwrite(0, b"hello distributed world").unwrap();
        assert_eq!(c.stat("/f").unwrap().size, 23);
        assert_eq!(h.pread(0, 100).unwrap(), b"hello distributed world");
        assert_eq!(h.pread(6, 11).unwrap(), b"distributed");
        h.close().unwrap();
    }

    #[test]
    fn write_read_spanning_many_chunks_and_nodes() {
        // Small chunks force wide striping.
        let config = ClusterConfig::new(4).with_chunk_size(4096);
        let (_d, c) = cluster_with(4, config);
        let h = c.open_handle("/big", OpenFlags::RDWR.with_create()).unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        h.pwrite(0, &data).unwrap();
        assert_eq!(c.stat("/big").unwrap().size, 100_000);
        assert_eq!(h.size(), 100_000);
        let back = h.pread(0, 100_000).unwrap();
        assert_eq!(back, data);
        // Unaligned interior read crossing chunk boundaries.
        let slice = h.pread(4000, 10_000).unwrap();
        assert_eq!(slice, &data[4000..14_000]);
        h.close().unwrap();
        // Verify chunks really spread over multiple daemons.
        let stats = c.cluster_stats().unwrap();
        let nodes_with_data = stats.iter().filter(|s| s.storage_write_bytes > 0).count();
        assert!(nodes_with_data >= 3, "striping hit {nodes_with_data} nodes");
    }

    #[test]
    fn sparse_files_read_zeros() {
        let config = ClusterConfig::new(2).with_chunk_size(4096);
        let (_d, c) = cluster_with(2, config);
        let h = c.open_handle("/sparse", OpenFlags::RDWR.with_create()).unwrap();
        h.pwrite(10_000, b"tail").unwrap();
        assert_eq!(c.stat("/sparse").unwrap().size, 10_004);
        assert_eq!(h.pread(0, 16).unwrap(), vec![0u8; 16]);
        assert_eq!(h.pread(10_000, 10).unwrap(), b"tail");
        h.close().unwrap();
    }

    #[test]
    fn reads_stop_at_eof() {
        let (_d, c) = cluster(2);
        let h = c.open_handle("/short", OpenFlags::RDWR.with_create()).unwrap();
        h.pwrite(0, b"12345").unwrap();
        assert_eq!(h.pread(0, 1000).unwrap(), b"12345");
        assert!(h.pread(5, 10).unwrap().is_empty());
        assert!(h.pread(500, 10).unwrap().is_empty());
        h.close().unwrap();
        // A fresh read-only handle sees the same EOF from its open-time
        // stat, without a per-read round trip.
        let r = c.open_handle("/short", OpenFlags::RDONLY).unwrap();
        assert_eq!(r.pread(0, 1000).unwrap(), b"12345");
        assert!(r.pread(5, 10).unwrap().is_empty());
        r.close().unwrap();
    }

    #[test]
    fn fd_read_write_seek() {
        let (_d, c) = cluster(3);
        let fd = c
            .open("/fd-file", OpenFlags::create_truncate().with_exclusive())
            .unwrap();
        // create_truncate is write-only; reopen for read-write.
        c.close(fd).unwrap();
        let fd = c.open("/fd-file", OpenFlags::RDWR).unwrap();
        assert_eq!(c.write(fd, b"abcdef").unwrap(), 6);
        assert_eq!(c.lseek(fd, 0, Whence::Set).unwrap(), 0);
        assert_eq!(c.read(fd, 3).unwrap(), b"abc");
        assert_eq!(c.read(fd, 10).unwrap(), b"def");
        assert!(c.read(fd, 10).unwrap().is_empty(), "at EOF");
        assert_eq!(c.lseek(fd, -2, Whence::End).unwrap(), 4);
        assert_eq!(c.read(fd, 10).unwrap(), b"ef");
        c.close(fd).unwrap();
        assert!(matches!(c.read(fd, 1), Err(GkfsError::BadFileDescriptor)));
    }

    #[test]
    fn pread_pwrite_do_not_move_position() {
        let (_d, c) = cluster(2);
        let fd = c.open("/p", OpenFlags::RDWR.with_create()).unwrap();
        c.pwrite(fd, 0, b"0123456789").unwrap();
        assert_eq!(c.pread(fd, 4, 3).unwrap(), b"456");
        assert_eq!(c.files().get(fd).unwrap().pos(), 0, "position unmoved");
        assert_eq!(c.read(fd, 2).unwrap(), b"01");
        c.close(fd).unwrap();
    }

    #[test]
    fn append_mode_writes_at_eof() {
        let (_d, c) = cluster(2);
        let h = c.open_handle("/log", OpenFlags::WRONLY.with_create()).unwrap();
        h.pwrite(0, b"first").unwrap();
        h.close().unwrap();
        let fd = c.open("/log", OpenFlags::WRONLY.with_append()).unwrap();
        c.write(fd, b"|second").unwrap();
        c.close(fd).unwrap();
        let r = c.open_handle("/log", OpenFlags::RDONLY).unwrap();
        assert_eq!(r.pread(0, 100).unwrap(), b"first|second");
    }

    #[test]
    fn open_nonexistent_fails_without_create() {
        let (_d, c) = cluster(2);
        assert!(matches!(
            c.open("/nope", OpenFlags::RDONLY),
            Err(GkfsError::NotFound)
        ));
        // O_CREAT|O_EXCL on existing file fails.
        c.create("/exists", 0o644).unwrap();
        assert!(matches!(
            c.open("/exists", OpenFlags::WRONLY.with_create().with_exclusive()),
            Err(GkfsError::Exists)
        ));
        // Plain O_CREAT succeeds on existing file.
        let fd = c.open("/exists", OpenFlags::WRONLY.with_create()).unwrap();
        c.close(fd).unwrap();
    }

    #[test]
    fn open_creat_on_directory_is_eisdir() {
        let (_d, c) = cluster(2);
        c.mkdir("/a-dir", 0o755).unwrap();
        // Non-exclusive O_CREAT|O_WRONLY on a directory: EISDIR.
        assert!(matches!(
            c.open("/a-dir", OpenFlags::WRONLY.with_create()),
            Err(GkfsError::IsDirectory)
        ));
        // Read-only open of the directory (for the file map) works.
        let fd = c.open("/a-dir", OpenFlags::RDONLY.with_create()).unwrap();
        assert_eq!(c.files().get(fd).unwrap().kind, FileKind::Directory);
        c.close(fd).unwrap();
        // Exclusive create of the same path still refuses (Exists).
        assert!(matches!(
            c.open("/a-dir", OpenFlags::WRONLY.with_create().with_exclusive()),
            Err(GkfsError::Exists)
        ));
    }

    #[test]
    fn open_truncate_clears_data() {
        let (_d, c) = cluster(2);
        let h = c.open_handle("/t", OpenFlags::WRONLY.with_create()).unwrap();
        h.pwrite(0, b"old contents").unwrap();
        h.close().unwrap();
        let fd = c.open("/t", OpenFlags::WRONLY.with_truncate()).unwrap();
        c.close(fd).unwrap();
        assert_eq!(c.stat("/t").unwrap().size, 0);
        let r = c.open_handle("/t", OpenFlags::RDONLY).unwrap();
        assert!(r.pread(0, 100).unwrap().is_empty());
    }

    #[test]
    fn mkdir_readdir_rmdir() {
        let (_d, c) = cluster(4);
        c.mkdir("/dir", 0o755).unwrap();
        for i in 0..20 {
            c.create(&format!("/dir/f{i:02}"), 0o644).unwrap();
        }
        c.mkdir("/dir/sub", 0o755).unwrap();
        let entries = c.readdir("/dir").unwrap();
        assert_eq!(entries.len(), 21);
        assert!(entries.windows(2).all(|w| w[0].name <= w[1].name), "sorted");
        assert_eq!(
            entries.iter().filter(|e| e.kind == FileKind::Directory).count(),
            1
        );
        // Non-empty directory refuses rmdir.
        assert!(matches!(c.rmdir("/dir"), Err(GkfsError::NotEmpty)));
        for i in 0..20 {
            c.unlink(&format!("/dir/f{i:02}")).unwrap();
        }
        c.rmdir("/dir/sub").unwrap();
        c.rmdir("/dir").unwrap();
        assert!(matches!(c.stat("/dir"), Err(GkfsError::NotFound)));
    }

    #[test]
    fn readdir_reports_sizes_like_ls_l() {
        // §III-A motivates readdir with `ls -l`: the listing must carry
        // sizes without a per-entry stat round.
        let (_d, c) = cluster(3);
        c.mkdir("/ls", 0o755).unwrap();
        let h = c.open_handle("/ls/small", OpenFlags::WRONLY.with_create()).unwrap();
        h.pwrite(0, b"12345").unwrap();
        h.close().unwrap();
        let h = c.open_handle("/ls/large", OpenFlags::WRONLY.with_create()).unwrap();
        h.pwrite(0, &vec![0u8; 10_000]).unwrap();
        h.close().unwrap();
        c.mkdir("/ls/sub", 0o755).unwrap();
        let entries = c.readdir("/ls").unwrap();
        let by_name: std::collections::HashMap<&str, &gkfs_common::types::Dirent> =
            entries.iter().map(|e| (e.name.as_str(), e)).collect();
        assert_eq!(by_name["small"].size, 5);
        assert_eq!(by_name["large"].size, 10_000);
        assert_eq!(by_name["sub"].size, 0);
        assert_eq!(by_name["sub"].kind, FileKind::Directory);
    }

    #[test]
    fn readdir_root_and_type_errors() {
        let (_d, c) = cluster(2);
        c.create("/a", 0o644).unwrap();
        let root = c.readdir("/").unwrap();
        assert_eq!(root.len(), 1);
        assert!(matches!(c.readdir("/a"), Err(GkfsError::NotDirectory)));
        assert!(matches!(c.rmdir("/a"), Err(GkfsError::NotDirectory)));
        assert!(matches!(c.unlink("/"), Err(GkfsError::IsDirectory)));
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let config = ClusterConfig::new(3).with_chunk_size(4096);
        let (_d, c) = cluster_with(3, config);
        let h = c.open_handle("/t", OpenFlags::RDWR.with_create()).unwrap();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 256) as u8).collect();
        h.pwrite(0, &data).unwrap();
        h.truncate(5000).unwrap();
        assert_eq!(c.stat("/t").unwrap().size, 5000);
        assert_eq!(h.size(), 5000, "open handle snaps to the new size");
        let back = h.pread(0, 20_000).unwrap();
        assert_eq!(back, &data[..5000]);
        // Extending truncate zero-fills.
        c.truncate("/t", 8000).unwrap();
        assert_eq!(c.stat("/t").unwrap().size, 8000);
        let back = h.pread(0, 8000).unwrap();
        assert_eq!(&back[..5000], &data[..5000]);
        assert!(back[5000..].iter().all(|&b| b == 0));
        h.close().unwrap();
    }

    #[test]
    fn unsupported_operations() {
        let (_d, c) = cluster(1);
        assert!(matches!(c.rename("/a", "/b"), Err(GkfsError::Unsupported(_))));
        assert!(matches!(c.link("/a", "/b"), Err(GkfsError::Unsupported(_))));
        assert!(matches!(c.symlink("/a", "/b"), Err(GkfsError::Unsupported(_))));
    }

    #[test]
    fn size_cache_buffers_and_flushes() {
        let config = ClusterConfig::new(2).with_size_cache(8);
        let (_d, c) = cluster_with(2, config);
        let h = c.open_handle("/cached", OpenFlags::WRONLY.with_create()).unwrap();
        for i in 0..5 {
            h.pwrite(i * 10, &[1u8; 10]).unwrap();
        }
        // Fewer writes than the window: nothing sent yet, but the
        // writing client still sees its own size.
        assert_eq!(c.stats().size_updates_sent.load(Ordering::Relaxed), 0);
        assert_eq!(c.stat("/cached").unwrap().size, 50);
        c.flush_size("/cached").unwrap();
        assert_eq!(c.stats().size_updates_sent.load(Ordering::Relaxed), 1);
        // After flush the daemons agree.
        for i in 5..8 {
            h.pwrite(i * 10, &[1u8; 10]).unwrap();
        }
        for i in 8..16 {
            h.pwrite(i * 10, &[1u8; 10]).unwrap();
        }
        // 11 buffered writes crossed the window of 8 once.
        assert!(c.stats().size_updates_sent.load(Ordering::Relaxed) >= 2);
        c.flush_all().unwrap();
        assert_eq!(c.stat("/cached").unwrap().size, 160);
        h.close().unwrap();
    }

    #[test]
    fn concurrent_shared_file_writers_converge() {
        let config = ClusterConfig::new(4).with_chunk_size(4096);
        let (_d, c) = cluster_with(4, config);
        let h = c.open_handle("/shared", OpenFlags::RDWR.with_create()).unwrap();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..50u64 {
                        let off = (t * 50 + i) * 100;
                        h.pwrite(off, &[t as u8 + 1; 100]).unwrap();
                    }
                });
            }
        });
        assert_eq!(c.stat("/shared").unwrap().size, 40_000);
        let data = h.pread(0, 40_000).unwrap();
        assert!(data.iter().all(|&b| (1..=8).contains(&b)));
        h.close().unwrap();
    }

    #[test]
    fn deep_paths_and_many_files_balance() {
        let (_d, c) = cluster(8);
        for i in 0..400 {
            c.create(&format!("/load/f{i}"), 0o644).unwrap();
        }
        let stats = c.cluster_stats().unwrap();
        let counts: Vec<u64> = stats.iter().map(|s| s.meta_entries).collect();
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 401, "400 files + root (no /load dir needed: flat ns)");
        let max = *counts.iter().max().unwrap();
        assert!(max < 120, "metadata should balance, worst node has {max}");
    }

    #[test]
    fn write_local_distribution_pins_data_to_own_node() {
        use gkfs_common::config::DistributorKind;
        let config = ClusterConfig::new(4)
            .with_chunk_size(4096)
            .with_distributor(DistributorKind::WriteLocal);
        let daemons: Vec<Arc<Daemon>> = (0..4)
            .map(|_| Daemon::spawn(gkfs_common::DaemonConfig::default()).unwrap())
            .collect();
        let endpoints = |d: &Vec<Arc<Daemon>>| -> Vec<Arc<dyn Endpoint>> {
            d.iter().map(|x| x.endpoint()).collect()
        };

        // Rank on node 2 writes its private file: every byte must land
        // on daemon 2 (the BurstFS pattern).
        let c2 = GekkoClient::mount_on(endpoints(&daemons), &config, 2).unwrap();
        let h2 = c2
            .open_handle("/rank2.out", OpenFlags::RDWR.with_create())
            .unwrap();
        let data: Vec<u8> = (0..50_000u32).map(|i| i as u8).collect();
        h2.pwrite(0, &data).unwrap();
        for (n, d) in daemons.iter().enumerate() {
            let (_, w_bytes, _, _) = d.backends().data.stats().snapshot();
            if n == 2 {
                assert_eq!(w_bytes, 50_000, "all data on the local node");
            } else {
                assert_eq!(w_bytes, 0, "node {n} must hold nothing");
            }
        }
        // The writer reads its own data back fine.
        assert_eq!(h2.pread(0, 50_000).unwrap(), data);
        h2.close().unwrap();

        // The documented BurstFS limitation: a client on another node
        // can stat the file (metadata is hash-placed) but resolves the
        // chunks to *its* node and sees holes.
        let c0 = GekkoClient::mount_on(endpoints(&daemons), &config, 0).unwrap();
        assert_eq!(c0.stat("/rank2.out").unwrap().size, 50_000);
        let h0 = c0.open_handle("/rank2.out", OpenFlags::RDONLY).unwrap();
        let cross = h0.pread(0, 100).unwrap();
        assert_eq!(cross, vec![0u8; 100], "cross-node read sees holes");
    }

    #[test]
    fn mount_validates_config() {
        let d = Daemon::spawn(gkfs_common::DaemonConfig::default()).unwrap();
        let eps: Vec<Arc<dyn Endpoint>> = vec![d.endpoint()];
        assert!(GekkoClient::mount(eps, &ClusterConfig::new(2)).is_err());
    }

    #[test]
    fn fsck_clean_namespace() {
        let config = ClusterConfig::new(4).with_chunk_size(4096);
        let (_d, c) = cluster_with(4, config);
        c.mkdir("/data", 0o755).unwrap();
        for i in 0..10 {
            let p = format!("/data/f{i}");
            let h = c.open_handle(&p, OpenFlags::WRONLY.with_create()).unwrap();
            h.pwrite(0, &vec![1u8; 10_000]).unwrap();
            h.close().unwrap();
        }
        let report = c.fsck().unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.files_checked, 10);
        assert!(report.directories_checked >= 2, "root + /data");
        assert!(report.chunkless_files.is_empty());
    }

    #[test]
    fn fsck_finds_and_purges_orphan_chunks() {
        let config = ClusterConfig::new(3).with_chunk_size(4096);
        let (daemons, c) = cluster_with(3, config);
        let h = c
            .open_handle("/will-orphan", OpenFlags::WRONLY.with_create())
            .unwrap();
        h.pwrite(0, &vec![7u8; 30_000]).unwrap();
        h.close().unwrap();
        // Sabotage: remove the metadata entry directly on its owner,
        // leaving the chunks stranded (a remove whose fan-out died).
        let mut removed = false;
        for d in &daemons {
            if d.backends().meta.remove("/will-orphan").is_ok() {
                removed = true;
                break;
            }
        }
        assert!(removed);
        let report = c.fsck().unwrap();
        assert!(!report.is_clean());
        assert!(report
            .orphan_chunks
            .iter()
            .all(|(_, p)| p == "/will-orphan"));
        let purged = c.fsck_purge(&report).unwrap();
        assert!(purged > 0);
        // Second pass: clean.
        assert!(c.fsck().unwrap().is_clean());
    }

    #[test]
    fn fsck_reports_truncate_extended_files_as_chunkless() {
        let (_d, c) = cluster(2);
        c.create("/sparse-only", 0o644).unwrap();
        c.truncate("/sparse-only", 5000).unwrap();
        let report = c.fsck().unwrap();
        assert!(report.is_clean(), "sparse files are not damage");
        assert_eq!(report.chunkless_files, vec!["/sparse-only".to_string()]);
    }

    #[test]
    fn stat_cache_eliminates_round_trips_but_sees_own_writes() {
        let config = ClusterConfig::new(2).with_stat_cache_ttl_ms(60_000);
        let (daemons, c) = cluster_with(2, config);
        let h = c.open_handle("/hot", OpenFlags::WRONLY.with_create()).unwrap();
        h.pwrite(0, b"12345").unwrap();
        h.close().unwrap();

        let gets = |ds: &Vec<Arc<Daemon>>| -> u64 {
            ds.iter()
                .map(|d| d.backends().meta.db().stats().gets.load(Ordering::Relaxed))
                .sum()
        };
        let before = gets(&daemons);
        // A storm of stats: at most one daemon round trip.
        for _ in 0..100 {
            assert_eq!(c.stat("/hot").unwrap().size, 5);
        }
        let delta = gets(&daemons) - before;
        assert!(delta <= 1, "cache should absorb the storm, saw {delta} gets");

        // The client's own writes stay visible (bump_size).
        let h = c.open_handle("/hot", OpenFlags::WRONLY).unwrap();
        h.pwrite(100, b"x").unwrap();
        h.close().unwrap();
        assert_eq!(c.stat("/hot").unwrap().size, 101);
        // Truncate invalidates; next stat refetches the exact value.
        c.truncate("/hot", 3).unwrap();
        assert_eq!(c.stat("/hot").unwrap().size, 3);
        // Unlink invalidates; stat misses cleanly.
        c.unlink("/hot").unwrap();
        assert!(c.stat("/hot").is_err());
    }

    #[test]
    fn stat_cache_staleness_is_bounded_by_ttl() {
        let config = ClusterConfig::new(2).with_stat_cache_ttl_ms(30);
        let (_d, observer) = cluster_with(2, config);
        observer.create("/ttl", 0o644).unwrap();
        // Prime the observer's cache with size 0.
        assert_eq!(observer.stat("/ttl").unwrap().size, 0);
        // A different client (no shared cache) grows the file.
        let writer = {
            let endpoints: Vec<Arc<dyn Endpoint>> =
                _d.iter().map(|d| d.endpoint()).collect();
            GekkoClient::mount(endpoints, &ClusterConfig::new(2)).unwrap()
        };
        let wh = writer.open_handle("/ttl", OpenFlags::WRONLY).unwrap();
        wh.pwrite(0, b"abcdef").unwrap();
        wh.close().unwrap();
        // Within the TTL the observer may still see the stale size;
        // after expiry it must see the truth.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(observer.stat("/ttl").unwrap().size, 6);
    }

    #[test]
    fn write_back_coalesces_small_writes() {
        let config = ClusterConfig::new(2).with_write_back(64 * 1024);
        let (daemons, c) = cluster_with(2, config);
        let h = c.open_handle("/wb", OpenFlags::RDWR.with_create()).unwrap();
        // 8 sequential 1 KiB writes: all buffered, zero data RPCs.
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        for i in 0..8usize {
            h.pwrite(i as u64 * 1024, &payload[i * 1024..(i + 1) * 1024])
                .unwrap();
        }
        assert_eq!(c.stats().wb_buffered_bytes.load(Ordering::Relaxed), 8192);
        assert_eq!(c.stats().wb_flushes.load(Ordering::Relaxed), 0);
        // Read-your-writes straight from the buffer; size included.
        assert_eq!(h.pread(0, 8192).unwrap(), payload);
        assert_eq!(h.size(), 8192);
        assert_eq!(c.stat("/wb").unwrap().size, 8192);
        // Another client sees nothing until the flush...
        let other = {
            let eps: Vec<Arc<dyn Endpoint>> = daemons.iter().map(|d| d.endpoint()).collect();
            GekkoClient::mount(eps, &ClusterConfig::new(2)).unwrap()
        };
        assert_eq!(other.stat("/wb").unwrap().size, 0);
        // ...which lands all eight writes as one coalesced batch.
        h.flush().unwrap();
        assert_eq!(c.stats().wb_flushes.load(Ordering::Relaxed), 1);
        assert_eq!(other.stat("/wb").unwrap().size, 8192);
        let oh = other.open_handle("/wb", OpenFlags::RDONLY).unwrap();
        assert_eq!(oh.pread(0, 8192).unwrap(), payload);
        oh.close().unwrap();
        h.close().unwrap();
    }

    #[test]
    fn write_back_drains_at_capacity_and_on_displacement() {
        let config = ClusterConfig::new(2).with_write_back(4096);
        let (_d, c) = cluster_with(2, config);
        let h = c.open_handle("/drain", OpenFlags::RDWR.with_create()).unwrap();
        for i in 0..4u64 {
            h.pwrite(i * 1024, &[i as u8 + 1; 1024]).unwrap();
        }
        // Hit capacity: exactly one coalesced batch went out.
        assert_eq!(c.stats().wb_flushes.load(Ordering::Relaxed), 1);
        // A disjoint write displaces the current run.
        h.pwrite(100_000, b"far").unwrap();
        h.pwrite(4096, b"near").unwrap();
        assert_eq!(c.stats().wb_flushes.load(Ordering::Relaxed), 2);
        h.flush().unwrap();
        assert_eq!(c.stats().wb_flushes.load(Ordering::Relaxed), 3);
        assert_eq!(h.size(), 100_003);
        assert_eq!(h.pread(100_000, 3).unwrap(), b"far");
        assert_eq!(h.pread(4096, 4).unwrap(), b"near");
        // An oversized write (>= capacity) goes straight through.
        h.pwrite(0, &vec![9u8; 8192]).unwrap();
        assert_eq!(
            c.stats().wb_flushes.load(Ordering::Relaxed),
            3,
            "write-through, not a buffer flush"
        );
        assert_eq!(h.pread(0, 8192).unwrap(), vec![9u8; 8192]);
        h.close().unwrap();
    }

    #[test]
    fn buffered_writes_survive_truncate_ordering() {
        // Writes buffered before a truncate must land before it
        // applies (program order), so the truncate wins.
        let config = ClusterConfig::new(2).with_write_back(64 * 1024);
        let (_d, c) = cluster_with(2, config);
        let h = c.open_handle("/order", OpenFlags::RDWR.with_create()).unwrap();
        h.pwrite(0, b"0123456789").unwrap();
        h.truncate(4).unwrap();
        assert_eq!(h.size(), 4);
        assert_eq!(h.pread(0, 100).unwrap(), b"0123");
        // Writing after the truncate extends again from the cut.
        h.pwrite(4, b"XY").unwrap();
        h.flush().unwrap();
        assert_eq!(c.stat("/order").unwrap().size, 6);
        assert_eq!(h.pread(0, 100).unwrap(), b"0123XY");
        h.close().unwrap();
    }

    #[test]
    fn handle_reads_skip_the_stat_round_trip() {
        let (daemons, c) = cluster(2);
        let h = c
            .open_handle("/no-read-stat", OpenFlags::RDWR.with_create())
            .unwrap();
        h.pwrite(0, b"0123456789").unwrap();
        let gets = |ds: &Vec<Arc<Daemon>>| -> u64 {
            ds.iter()
                .map(|d| d.backends().meta.db().stats().gets.load(Ordering::Relaxed))
                .sum()
        };
        let before = gets(&daemons);
        for _ in 0..50 {
            assert_eq!(h.pread(0, 10).unwrap(), b"0123456789");
        }
        assert_eq!(
            gets(&daemons) - before,
            0,
            "handle reads must not stat the metadata owner"
        );
        assert!(c.stats().size_cache_hits.load(Ordering::Relaxed) >= 50);
        // SEEK_END is served from the cached size too.
        assert_eq!(h.seek(0, Whence::End).unwrap(), 10);
        assert_eq!(gets(&daemons) - before, 0);
        h.close().unwrap();
    }

    #[test]
    fn rpc_counter_counts_logical_rpcs() {
        let (_d, c) = cluster(2);
        // Mounting created the root: the counter is already warm.
        let base = c.stats().rpcs_issued.load(Ordering::Relaxed);
        assert!(base >= 1);
        c.create("/r", 0o644).unwrap();
        assert_eq!(c.stats().rpcs_issued.load(Ordering::Relaxed), base + 1);
        c.stat("/r").unwrap();
        assert_eq!(c.stats().rpcs_issued.load(Ordering::Relaxed), base + 2);
    }

    #[test]
    fn lease_revocations_keep_stat_cache_honest() {
        let config = ClusterConfig::new(2).with_stat_cache_ttl_ms(60_000);
        let (_d, c) = cluster_with(2, config);
        c.create("/lease", 0o644).unwrap();
        assert!(c.stats().lease_invalidations.load(Ordering::Relaxed) >= 1);
        assert_eq!(c.stat("/lease").unwrap().size, 0);
        // Truncate revokes: the very next stat refetches the truth.
        c.truncate("/lease", 123).unwrap();
        assert_eq!(c.stat("/lease").unwrap().size, 123);
        c.unlink("/lease").unwrap();
        assert!(c.stat("/lease").is_err());
        // mkdir/rmdir revoke too (a stale "directory exists" entry
        // would make a later create look spuriously conflicted).
        c.mkdir("/ld", 0o755).unwrap();
        c.stat("/ld").unwrap();
        let n = c.stats().lease_invalidations.load(Ordering::Relaxed);
        c.rmdir("/ld").unwrap();
        assert!(c.stats().lease_invalidations.load(Ordering::Relaxed) > n);
        assert!(c.stat("/ld").is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn path_shims_route_through_open_handles() {
        let config = ClusterConfig::new(2).with_write_back(64 * 1024);
        let (_d, c) = cluster_with(2, config);
        let h = c.open_handle("/shim", OpenFlags::RDWR.with_create()).unwrap();
        // A path-based write lands in the open handle's buffer...
        c.write_at_path("/shim", 0, b"buffered").unwrap();
        assert_eq!(c.stats().wb_buffered_bytes.load(Ordering::Relaxed), 8);
        // ...and the path-based read sees it without any flush or stat.
        assert_eq!(c.read_at_path("/shim", 0, 8).unwrap(), b"buffered");
        assert_eq!(c.stats().wb_flushes.load(Ordering::Relaxed), 0);
        h.close().unwrap();
        // With no handle open the shims fall back to the anonymous
        // through-path, as before the handle API existed.
        c.create("/anon", 0o644).unwrap();
        c.write_at_path("/anon", 0, b"direct").unwrap();
        assert_eq!(c.read_at_path("/anon", 0, 6).unwrap(), b"direct");
    }
}
