//! The GekkoFS client: routing, chunking, and the POSIX-relaxed
//! operation set.
//!
//! Every operation resolves its target daemon(s) locally — *"each
//! client is able to independently resolve the responsible node for a
//! file system operation"* (§III-B-a) — so there is no metadata server
//! and no coordination:
//!
//! * metadata ops go to `distributor.locate_metadata(path)`;
//! * each data chunk goes to `distributor.locate_chunk(path, id)`;
//! * `readdir`, `unlink` (data), and `truncate` (data) broadcast to all
//!   daemons, because chunks and sibling entries are spread everywhere.
//!
//! Consistency follows the paper (§III-A): operations on one file are
//! strongly consistent (the owning daemon serializes them); directory
//! listings are eventually consistent; `rename`/links are unsupported;
//! nothing is cached except the optional write-size window from §IV-B.

use crate::filemap::{FileMap, OpenFile};
use crate::rpc::DaemonRing;
use crate::size_cache::SizeCache;
use crate::stat_cache::StatCache;
use bytes::Bytes;
use gkfs_common::chunk::{chunk_range, ChunkLayout};
use gkfs_common::distributor::{Distributor, NodeId};
use gkfs_common::path as gpath;
use gkfs_common::types::Dirent;
use gkfs_common::{ClusterConfig, FileKind, GkfsError, Metadata, OpenFlags, Result};
use gkfs_rpc::proto::{ChunkOp, DaemonStatsResp};
use gkfs_rpc::Endpoint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Client-side operation counters.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// create/mkdir operations issued.
    pub creates: AtomicU64,
    /// stat operations issued.
    pub stats: AtomicU64,
    /// unlink/rmdir operations issued.
    pub removes: AtomicU64,
    /// Write calls issued.
    pub write_ops: AtomicU64,
    /// Read calls issued.
    pub read_ops: AtomicU64,
    /// Total bytes written.
    pub bytes_written: AtomicU64,
    /// Total bytes read.
    pub bytes_read: AtomicU64,
    /// Size updates actually sent to metadata owners.
    pub size_updates_sent: AtomicU64,
    /// Size updates absorbed by the client cache (§IV-B).
    pub size_updates_buffered: AtomicU64,
}

/// Seek origin for [`GekkoClient::lseek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// Absolute offset (`SEEK_SET`).
    Set,
    /// Relative to the current position (`SEEK_CUR`).
    Cur,
    /// Relative to end of file (`SEEK_END`).
    End,
}

/// A mounted GekkoFS namespace, as seen by one client process.
pub struct GekkoClient {
    ring: DaemonRing,
    dist: Arc<dyn Distributor>,
    layout: ChunkLayout,
    files: FileMap,
    size_cache: SizeCache,
    stat_cache: Option<StatCache>,
    stats: ClientStats,
}

fn now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

impl GekkoClient {
    /// Mount: connect the given per-daemon endpoints using the shared
    /// cluster configuration. Creates the root directory if missing.
    /// The client is assumed to run on node 0; use
    /// [`GekkoClient::mount_on`] when placement is locality-sensitive.
    pub fn mount(endpoints: Vec<Arc<dyn Endpoint>>, config: &ClusterConfig) -> Result<GekkoClient> {
        Self::mount_on(endpoints, config, 0)
    }

    /// Mount as a client co-located with daemon `local_node` — the
    /// node identity only matters for the `WriteLocal` distribution
    /// ablation, where a client's chunks land on its own daemon.
    pub fn mount_on(
        endpoints: Vec<Arc<dyn Endpoint>>,
        config: &ClusterConfig,
        local_node: NodeId,
    ) -> Result<GekkoClient> {
        if endpoints.len() != config.nodes {
            return Err(GkfsError::InvalidArgument(format!(
                "{} endpoints but config says {} nodes",
                endpoints.len(),
                config.nodes
            )));
        }
        if local_node >= config.nodes {
            return Err(GkfsError::InvalidArgument(format!(
                "local node {local_node} out of range 0..{}",
                config.nodes
            )));
        }
        let client = GekkoClient {
            ring: DaemonRing::with_retry(endpoints, config.retry.clone()),
            dist: config.make_distributor_for(local_node),
            layout: ChunkLayout::new(config.chunk_size),
            files: FileMap::new(),
            size_cache: SizeCache::new(config.size_cache_ops),
            stat_cache: if config.stat_cache_ttl_ms > 0 {
                Some(StatCache::new(std::time::Duration::from_millis(
                    config.stat_cache_ttl_ms,
                )))
            } else {
                None
            },
            stats: ClientStats::default(),
        };
        // Root directory: non-exclusive create on its owner.
        let root_owner = client.dist.locate_metadata(gpath::ROOT);
        client
            .ring
            .create(root_owner, gpath::ROOT, FileKind::Directory, 0o755, false, now_ns())?;
        gkfs_common::gkfs_info!(
            "mounted: {} nodes, chunk={} size_cache={} stat_cache={}ms",
            config.nodes,
            config.chunk_size,
            config.size_cache_ops,
            config.stat_cache_ttl_ms
        );
        Ok(client)
    }

    /// stat operations issued.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// The descriptor table (exposed for the preload ABI).
    pub fn files(&self) -> &FileMap {
        &self.files
    }

    /// Number of daemons in the mounted namespace.
    pub fn nodes(&self) -> usize {
        self.ring.nodes()
    }

    fn meta_owner(&self, path: &str) -> NodeId {
        self.dist.locate_metadata(path)
    }

    // ---------------------------------------------------------------
    // Metadata operations
    // ---------------------------------------------------------------

    /// Create a regular file (exclusive, like `O_CREAT|O_EXCL`).
    pub fn create(&self, path: &str, mode: u32) -> Result<()> {
        let path = gpath::normalize(path)?;
        self.stats.creates.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.stat_cache {
            cache.invalidate(&path);
        }
        self.ring
            .create(self.meta_owner(&path), &path, FileKind::File, mode, true, now_ns())
    }

    /// Create a directory (exclusive).
    ///
    /// Note that GekkoFS' namespace is flat: parent directories are
    /// *not* required to exist (mdtest-style workloads create files
    /// wherever they like), matching the paper's "internally kept flat
    /// namespace".
    pub fn mkdir(&self, path: &str, mode: u32) -> Result<()> {
        let path = gpath::normalize(path)?;
        if path == gpath::ROOT {
            return Err(GkfsError::Exists);
        }
        self.stats.creates.fetch_add(1, Ordering::Relaxed);
        self.ring
            .create(self.meta_owner(&path), &path, FileKind::Directory, mode, true, now_ns())
    }

    /// Fetch metadata. A client with buffered size updates sees its own
    /// writes reflected (read-your-writes within one client).
    pub fn stat(&self, path: &str) -> Result<Metadata> {
        let path = gpath::normalize(path)?;
        self.stats.stats.fetch_add(1, Ordering::Relaxed);
        let mut meta = self.fetch_meta(&path)?;
        if let Some(local) = self.size_cache.peek(&path) {
            meta.size = meta.size.max(local);
        }
        Ok(meta)
    }

    /// Fetch metadata through the optional §V stat cache. Negative
    /// results (NotFound) are never cached — a create must be visible
    /// immediately.
    fn fetch_meta(&self, path: &str) -> Result<Metadata> {
        if let Some(cache) = &self.stat_cache {
            if let Some(m) = cache.get(path) {
                return Ok(m);
            }
            let m = self.ring.stat(self.meta_owner(path), path)?;
            cache.put(path, m.clone());
            return Ok(m);
        }
        self.ring.stat(self.meta_owner(path), path)
    }

    /// Remove a regular file: metadata from its owner, chunks from
    /// every daemon.
    pub fn unlink(&self, path: &str) -> Result<()> {
        let path = gpath::normalize(path)?;
        self.stats.removes.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.stat_cache {
            cache.invalidate(&path);
        }
        let meta = self.ring.stat(self.meta_owner(&path), &path)?;
        if meta.is_dir() {
            return Err(GkfsError::IsDirectory);
        }
        self.ring.remove_meta(self.meta_owner(&path), &path)?;
        // Zero-byte files (the mdtest workload) hold no chunks: skip
        // the data fan-out entirely. This is what lets removes scale
        // in §IV-A. Otherwise target exactly the daemons that can own
        // one of the file's chunks — the client derives the set from
        // the size and the distributor, no state needed.
        if meta.size > 0 {
            let chunks = self.layout.chunk_count(meta.size);
            let mut targets: Vec<NodeId> = (0..chunks)
                .map(|c| self.dist.locate_chunk(&path, c))
                .collect();
            targets.sort_unstable();
            targets.dedup();
            // Submit the remove to every holder, then wait — the
            // whole fan-out overlaps on the wire and shares one
            // operation deadline.
            let deadline = self.ring.op_deadline();
            let inflight = targets
                .into_iter()
                .map(|n| self.ring.remove_chunks_nb(n, &path))
                .collect::<Vec<_>>();
            for fut in inflight {
                fut?.wait_deadline(deadline)?;
            }
        }
        Ok(())
    }

    /// Remove an empty directory.
    pub fn rmdir(&self, path: &str) -> Result<()> {
        let path = gpath::normalize(path)?;
        if path == gpath::ROOT {
            return Err(GkfsError::InvalidArgument("cannot remove root".into()));
        }
        self.stats.removes.fetch_add(1, Ordering::Relaxed);
        let meta = self.ring.stat(self.meta_owner(&path), &path)?;
        if !meta.is_dir() {
            return Err(GkfsError::NotDirectory);
        }
        // Emptiness is checked across all daemons. This is the paper's
        // eventual-consistency caveat: a concurrent create can slip in.
        let listings = self.ring.broadcast(|n| self.ring.readdir_nb(n, &path));
        for l in listings {
            if !l?.is_empty() {
                return Err(GkfsError::NotEmpty);
            }
        }
        self.ring.remove_meta(self.meta_owner(&path), &path)?;
        Ok(())
    }

    /// List a directory: broadcast prefix scans, merge, sort.
    /// Eventually consistent (§III-A: "GekkoFS does not guarantee to
    /// return the current state of the directory").
    pub fn readdir(&self, path: &str) -> Result<Vec<Dirent>> {
        let path = gpath::normalize(path)?;
        let meta = self.ring.stat(self.meta_owner(&path), &path)?;
        if !meta.is_dir() {
            return Err(GkfsError::NotDirectory);
        }
        let listings = self.ring.broadcast(|n| self.ring.readdir_nb(n, &path));
        let mut all = Vec::new();
        for l in listings {
            all.extend(l?);
        }
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all.dedup_by(|a, b| a.name == b.name);
        Ok(all)
    }

    /// Truncate (or extend) a file to `new_size`.
    pub fn truncate(&self, path: &str, new_size: u64) -> Result<()> {
        let path = gpath::normalize(path)?;
        // Pending buffered size updates for this path are now moot.
        self.size_cache.drain(&path);
        if let Some(cache) = &self.stat_cache {
            cache.invalidate(&path);
        }
        self.ring
            .truncate_meta(self.meta_owner(&path), &path, new_size, now_ns())?;
        let (keep_chunk, keep_bytes) = if new_size == 0 {
            (0, 0)
        } else {
            let last = self.layout.chunk_of(new_size - 1);
            (last, new_size - last * self.layout.chunk_size)
        };
        let results = self
            .ring
            .broadcast(|n| self.ring.truncate_chunks_nb(n, &path, keep_chunk, keep_bytes));
        for r in results {
            r?;
        }
        Ok(())
    }

    /// Renames are deliberately unsupported (§III-A).
    pub fn rename(&self, _from: &str, _to: &str) -> Result<()> {
        Err(GkfsError::Unsupported("rename"))
    }

    /// Hard links are deliberately unsupported (§III-A).
    pub fn link(&self, _from: &str, _to: &str) -> Result<()> {
        Err(GkfsError::Unsupported("link"))
    }

    /// Symbolic links are deliberately unsupported (§III-A).
    pub fn symlink(&self, _from: &str, _to: &str) -> Result<()> {
        Err(GkfsError::Unsupported("symlink"))
    }

    // ---------------------------------------------------------------
    // Descriptor-based operations
    // ---------------------------------------------------------------

    /// Open (optionally creating) a file, returning a GekkoFS fd.
    pub fn open(&self, path: &str, flags: OpenFlags) -> Result<i32> {
        let path = gpath::normalize(path)?;
        let kind = if flags.create {
            self.stats.creates.fetch_add(1, Ordering::Relaxed);
            self.ring.create(
                self.meta_owner(&path),
                &path,
                FileKind::File,
                0o644,
                flags.exclusive,
                now_ns(),
            )?;
            if flags.exclusive {
                // Freshly created: must be a file — no extra stat on
                // the mdtest hot path.
                FileKind::File
            } else {
                // Non-exclusive create may have hit an existing entry
                // of either kind; `open(dir, O_CREAT|O_WRONLY)` must
                // fail with EISDIR, not scribble on a directory.
                let meta = self.ring.stat(self.meta_owner(&path), &path)?;
                if meta.is_dir() && flags.write {
                    return Err(GkfsError::IsDirectory);
                }
                meta.kind
            }
        } else {
            let meta = self.ring.stat(self.meta_owner(&path), &path)?;
            if meta.is_dir() && flags.write {
                return Err(GkfsError::IsDirectory);
            }
            meta.kind
        };
        if flags.truncate && kind == FileKind::File {
            self.truncate(&path, 0)?;
        }
        let file = OpenFile::new(path.clone(), flags, kind);
        if flags.append {
            let size = self.stat(&path)?.size;
            file.seek_to(size);
        }
        Ok(self.files.insert(file))
    }

    /// Close a descriptor, flushing any buffered size update.
    pub fn close(&self, fd: i32) -> Result<()> {
        let file = self.files.remove(fd)?;
        self.flush_size(&file.path)
    }

    /// `dup(2)`.
    pub fn dup(&self, fd: i32) -> Result<i32> {
        self.files.dup(fd)
    }

    /// Reposition a descriptor.
    pub fn lseek(&self, fd: i32, offset: i64, whence: Whence) -> Result<u64> {
        let file = self.files.get(fd)?;
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => file.pos() as i64,
            Whence::End => self.stat(&file.path)?.size as i64,
        };
        let target = base + offset;
        if target < 0 {
            return Err(GkfsError::InvalidArgument("seek before start".into()));
        }
        Ok(file.seek_to(target as u64))
    }

    /// Write at the current position, advancing it.
    pub fn write(&self, fd: i32, data: &[u8]) -> Result<usize> {
        let file = self.files.get(fd)?;
        if !file.flags.write {
            return Err(GkfsError::BadFileDescriptor);
        }
        let offset = if file.flags.append {
            // O_APPEND: position at current EOF. Concurrent appenders
            // from different clients may interleave — GekkoFS offers no
            // distributed locking (§III-A).
            let size = self.stat(&file.path)?.size;
            file.seek_to(size + data.len() as u64);
            size
        } else {
            file.advance(data.len() as u64)
        };
        self.write_at_path(&file.path, offset, data)?;
        Ok(data.len())
    }

    /// Positional write (`pwrite`); does not move the descriptor.
    pub fn pwrite(&self, fd: i32, offset: u64, data: &[u8]) -> Result<usize> {
        let file = self.files.get(fd)?;
        if !file.flags.write {
            return Err(GkfsError::BadFileDescriptor);
        }
        self.write_at_path(&file.path, offset, data)?;
        Ok(data.len())
    }

    /// Read from the current position, advancing by the bytes returned.
    pub fn read(&self, fd: i32, len: usize) -> Result<Vec<u8>> {
        let file = self.files.get(fd)?;
        if !file.flags.read {
            return Err(GkfsError::BadFileDescriptor);
        }
        let size = self.stat(&file.path)?.size;
        let pos = file.pos();
        let avail = size.saturating_sub(pos).min(len as u64);
        let start = file.advance(avail);
        self.read_at_path(&file.path, start, avail)
    }

    /// Positional read (`pread`); does not move the descriptor.
    pub fn pread(&self, fd: i32, offset: u64, len: usize) -> Result<Vec<u8>> {
        let file = self.files.get(fd)?;
        if !file.flags.read {
            return Err(GkfsError::BadFileDescriptor);
        }
        self.read_at_path(&file.path, offset, len as u64)
    }

    /// Flush buffered size updates for this descriptor's file.
    pub fn fsync(&self, fd: i32) -> Result<()> {
        let file = self.files.get(fd)?;
        self.flush_size(&file.path)
    }

    // ---------------------------------------------------------------
    // Data path
    // ---------------------------------------------------------------

    /// Write `data` at `offset` of `path`: split into chunks, group by
    /// owning daemon, fan out in parallel, then update the file size at
    /// the metadata owner (possibly through the §IV-B cache).
    pub fn write_at_path(&self, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        let path = gpath::normalize(path)?;
        self.stats.write_ops.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        if data.is_empty() {
            // POSIX: a zero-length write has no effect — in particular
            // it must not extend the file via a size update.
            return Ok(());
        }

        {
            let pieces = chunk_range(self.layout, offset, data.len() as u64);
            // Group chunk-pieces by their owning daemon, gathering each
            // daemon's bulk buffer (the scatter/gather list an RDMA
            // transport would build).
            let mut per_node: HashMap<NodeId, (Vec<ChunkOp>, Vec<u8>)> = HashMap::new();
            for p in &pieces {
                let node = self.dist.locate_chunk(&path, p.chunk_id);
                let entry = per_node.entry(node).or_default();
                entry.0.push(ChunkOp {
                    chunk_id: p.chunk_id,
                    offset: p.offset,
                    len: p.len,
                });
                entry
                    .1
                    .extend_from_slice(&data[p.buf_offset as usize..(p.buf_offset + p.len) as usize]);
            }
            self.fan_out_writes(&path, per_node)?;
        }

        // Size update to the metadata owner.
        let candidate = offset + data.len() as u64;
        if let Some(cache) = &self.stat_cache {
            cache.bump_size(&path, candidate, now_ns());
        }
        match self.size_cache.record(&path, candidate, now_ns()) {
            Some(pending) => {
                self.stats.size_updates_sent.fetch_add(1, Ordering::Relaxed);
                self.ring.update_size(
                    self.meta_owner(&pending.path),
                    &pending.path,
                    pending.size,
                    pending.mtime_ns,
                )?;
            }
            None => {
                self.stats
                    .size_updates_buffered
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    fn fan_out_writes(
        &self,
        path: &str,
        per_node: HashMap<NodeId, (Vec<ChunkOp>, Vec<u8>)>,
    ) -> Result<()> {
        if per_node.len() == 1 {
            if let Some((node, (ops, bulk))) = per_node.into_iter().next() {
                return self.ring.write_chunks(node, path, ops, Bytes::from(bulk));
            }
            return Ok(());
        }
        // Pipelined fan-out: submit every daemon's batch, then wait
        // for all the replies under one shared deadline — the striped
        // write gets a single time budget, not N stacked timeouts.
        let deadline = self.ring.op_deadline();
        let inflight = per_node
            .into_iter()
            .map(|(node, (ops, bulk))| {
                self.ring.write_chunks_nb(node, path, ops, Bytes::from(bulk))
            })
            .collect::<Vec<_>>();
        for fut in inflight {
            fut?.wait_deadline(deadline)?;
        }
        Ok(())
    }

    /// Read `len` bytes at `offset` of `path`. Returns the bytes up to
    /// EOF; holes read as zeros.
    pub fn read_at_path(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let path = gpath::normalize(path)?;
        self.stats.read_ops.fetch_add(1, Ordering::Relaxed);
        let size = {
            let mut meta = self.fetch_meta(&path)?;
            if let Some(local) = self.size_cache.peek(&path) {
                meta.size = meta.size.max(local);
            }
            if meta.is_dir() {
                return Err(GkfsError::IsDirectory);
            }
            meta.size
        };
        if offset >= size || len == 0 {
            return Ok(Vec::new());
        }
        let effective = len.min(size - offset);
        let pieces = chunk_range(self.layout, offset, effective);
        let mut per_node: HashMap<NodeId, Vec<(u64, ChunkOp)>> = HashMap::new();
        for p in &pieces {
            let node = self.dist.locate_chunk(&path, p.chunk_id);
            per_node.entry(node).or_default().push((
                p.buf_offset,
                ChunkOp {
                    chunk_id: p.chunk_id,
                    offset: p.offset,
                    len: p.len,
                },
            ));
        }

        // Holes read as zeros: pre-zero the buffer, copy what returns.
        // The gather submits one read batch per daemon before waiting
        // on any reply, so every daemon streams its chunks back
        // concurrently.
        let mut out = vec![0u8; effective as usize];
        let deadline = self.ring.op_deadline();
        let inflight: Vec<_> = per_node
            .into_iter()
            .map(|(node, batch)| {
                let ops: Vec<ChunkOp> = batch.iter().map(|(_, op)| *op).collect();
                (batch, self.ring.read_chunks_nb(node, &path, ops))
            })
            .collect();
        for (batch, fut) in inflight {
            let (lens, bulk) = fut?.wait_deadline(deadline)?;
            let mut cursor = 0usize;
            for ((buf_off, op), got) in batch.iter().zip(lens.iter()) {
                let got = *got as usize;
                debug_assert!(got as u64 <= op.len);
                out[*buf_off as usize..*buf_off as usize + got]
                    .copy_from_slice(&bulk[cursor..cursor + got]);
                cursor += got;
            }
        }
        self.stats
            .bytes_read
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    // ---------------------------------------------------------------
    // Maintenance
    // ---------------------------------------------------------------

    /// Flush the buffered size update for one path, if any.
    pub fn flush_size(&self, path: &str) -> Result<()> {
        if let Some(p) = self.size_cache.drain(path) {
            self.stats.size_updates_sent.fetch_add(1, Ordering::Relaxed);
            self.ring
                .update_size(self.meta_owner(&p.path), &p.path, p.size, p.mtime_ns)?;
        }
        Ok(())
    }

    /// Flush all buffered size updates (unmount). One update per dirty
    /// file, all submitted before any reply is awaited.
    pub fn flush_all(&self) -> Result<()> {
        let deadline = self.ring.op_deadline();
        let inflight: Vec<_> = self
            .size_cache
            .drain_all()
            .into_iter()
            .map(|p| {
                self.stats.size_updates_sent.fetch_add(1, Ordering::Relaxed);
                self.ring
                    .update_size_nb(self.meta_owner(&p.path), &p.path, p.size, p.mtime_ns)
            })
            .collect();
        for fut in inflight {
            fut?.wait_deadline(deadline)?;
        }
        Ok(())
    }

    /// Aggregate daemon statistics across the cluster.
    pub fn cluster_stats(&self) -> Result<Vec<DaemonStatsResp>> {
        self.ring
            .broadcast(|n| self.ring.daemon_stats_nb(n))
            .into_iter()
            .collect()
    }

    /// Client-side fault-handling health per daemon: breaker state,
    /// retry/failure counters, transport reconnects. Unlike
    /// [`GekkoClient::cluster_stats`] this needs no RPC — it reports
    /// what *this* client has observed of each daemon.
    pub fn node_health(&self) -> Vec<crate::rpc::NodeHealthSnapshot> {
        self.ring.health_snapshot()
    }

    /// Consistency check across the whole namespace (the `fsck` admin
    /// operation):
    ///
    /// * **orphan chunks** — a daemon holds chunk files for a path
    ///   with no metadata entry (e.g. a remove whose data fan-out was
    ///   interrupted). These waste SSD space and are safe to purge.
    /// * **chunkless files** — metadata says `size > 0` but no daemon
    ///   holds any chunk. Legitimate for files extended purely by
    ///   `truncate` (they read as zeros), so reported for inspection,
    ///   not treated as damage.
    ///
    /// Like `readdir`, the scan is eventually consistent: run it on a
    /// quiescent namespace for exact results.
    pub fn fsck(&self) -> Result<FsckReport> {
        // 1. Global chunk inventory.
        let mut chunk_holders: HashMap<String, Vec<NodeId>> = HashMap::new();
        for (node, inv) in self
            .ring
            .broadcast(|n| self.ring.chunk_inventory_nb(n))
            .into_iter()
            .enumerate()
        {
            for (path, _count) in inv? {
                chunk_holders.entry(path).or_default().push(node);
            }
        }

        // 2. Walk the namespace.
        let mut files: HashMap<String, u64> = HashMap::new();
        let mut stack = vec![gpath::ROOT.to_string()];
        let mut dirs = 0usize;
        while let Some(dir) = stack.pop() {
            dirs += 1;
            for e in self.readdir(&dir)? {
                let p = gpath::join(&dir, &e.name);
                match e.kind {
                    FileKind::Directory => stack.push(p),
                    FileKind::File => {
                        files.insert(p, e.size);
                    }
                }
            }
        }

        // 3. Cross-reference.
        let mut orphan_chunks = Vec::new();
        for (path, nodes) in &chunk_holders {
            if !files.contains_key(path) {
                for n in nodes {
                    orphan_chunks.push((*n, path.clone()));
                }
            }
        }
        orphan_chunks.sort();
        let mut chunkless_files: Vec<String> = files
            .iter()
            .filter(|(p, size)| **size > 0 && !chunk_holders.contains_key(*p))
            .map(|(p, _)| p.clone())
            .collect();
        chunkless_files.sort();

        Ok(FsckReport {
            files_checked: files.len(),
            directories_checked: dirs,
            orphan_chunks,
            chunkless_files,
        })
    }

    /// Purge the orphan chunks a previous [`GekkoClient::fsck`] found.
    /// Returns how many (node, path) holdings were removed.
    pub fn fsck_purge(&self, report: &FsckReport) -> Result<usize> {
        let deadline = self.ring.op_deadline();
        let inflight: Vec<_> = report
            .orphan_chunks
            .iter()
            .map(|(node, path)| self.ring.remove_chunks_nb(*node, path))
            .collect();
        for fut in inflight {
            fut?.wait_deadline(deadline)?;
        }
        Ok(report.orphan_chunks.len())
    }
}

/// Outcome of [`GekkoClient::fsck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Regular files examined.
    pub files_checked: usize,
    /// Directories walked.
    pub directories_checked: usize,
    /// `(daemon, path)` pairs holding chunks with no metadata entry.
    pub orphan_chunks: Vec<(NodeId, String)>,
    /// Files whose size is positive but which have no chunks anywhere
    /// (sparse-by-truncate, or lost data).
    pub chunkless_files: Vec<String>,
}

impl FsckReport {
    /// No orphans found (chunkless files are informational).
    pub fn is_clean(&self) -> bool {
        self.orphan_chunks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkfs_daemon::Daemon;

    fn cluster(nodes: usize) -> (Vec<Arc<Daemon>>, GekkoClient) {
        cluster_with(nodes, ClusterConfig::new(nodes))
    }

    fn cluster_with(nodes: usize, config: ClusterConfig) -> (Vec<Arc<Daemon>>, GekkoClient) {
        let daemons: Vec<Arc<Daemon>> = (0..nodes)
            .map(|_| Daemon::spawn(gkfs_common::DaemonConfig::default()).unwrap())
            .collect();
        let endpoints: Vec<Arc<dyn Endpoint>> = daemons.iter().map(|d| d.endpoint()).collect();
        let client = GekkoClient::mount(endpoints, &config).unwrap();
        (daemons, client)
    }

    #[test]
    fn create_stat_unlink() {
        let (_d, c) = cluster(4);
        c.create("/file", 0o644).unwrap();
        let m = c.stat("/file").unwrap();
        assert_eq!(m.kind, FileKind::File);
        assert_eq!(m.size, 0);
        assert!(matches!(c.create("/file", 0o644), Err(GkfsError::Exists)));
        c.unlink("/file").unwrap();
        assert!(matches!(c.stat("/file"), Err(GkfsError::NotFound)));
    }

    #[test]
    fn write_read_roundtrip_single_chunk() {
        let (_d, c) = cluster(4);
        c.create("/f", 0o644).unwrap();
        c.write_at_path("/f", 0, b"hello distributed world").unwrap();
        assert_eq!(c.stat("/f").unwrap().size, 23);
        let data = c.read_at_path("/f", 0, 100).unwrap();
        assert_eq!(data, b"hello distributed world");
        let mid = c.read_at_path("/f", 6, 11).unwrap();
        assert_eq!(mid, b"distributed");
    }

    #[test]
    fn write_read_spanning_many_chunks_and_nodes() {
        // Small chunks force wide striping.
        let config = ClusterConfig::new(4).with_chunk_size(4096);
        let (_d, c) = cluster_with(4, config);
        c.create("/big", 0o644).unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        c.write_at_path("/big", 0, &data).unwrap();
        assert_eq!(c.stat("/big").unwrap().size, 100_000);
        let back = c.read_at_path("/big", 0, 100_000).unwrap();
        assert_eq!(back, data);
        // Unaligned interior read crossing chunk boundaries.
        let slice = c.read_at_path("/big", 4000, 10_000).unwrap();
        assert_eq!(slice, &data[4000..14_000]);
        // Verify chunks really spread over multiple daemons.
        let stats = c.cluster_stats().unwrap();
        let nodes_with_data = stats.iter().filter(|s| s.storage_write_bytes > 0).count();
        assert!(nodes_with_data >= 3, "striping hit {nodes_with_data} nodes");
    }

    #[test]
    fn sparse_files_read_zeros() {
        let config = ClusterConfig::new(2).with_chunk_size(4096);
        let (_d, c) = cluster_with(2, config);
        c.create("/sparse", 0o644).unwrap();
        c.write_at_path("/sparse", 10_000, b"tail").unwrap();
        assert_eq!(c.stat("/sparse").unwrap().size, 10_004);
        let head = c.read_at_path("/sparse", 0, 16).unwrap();
        assert_eq!(head, vec![0u8; 16]);
        let tail = c.read_at_path("/sparse", 10_000, 10).unwrap();
        assert_eq!(tail, b"tail");
    }

    #[test]
    fn reads_stop_at_eof() {
        let (_d, c) = cluster(2);
        c.create("/short", 0o644).unwrap();
        c.write_at_path("/short", 0, b"12345").unwrap();
        assert_eq!(c.read_at_path("/short", 0, 1000).unwrap(), b"12345");
        assert!(c.read_at_path("/short", 5, 10).unwrap().is_empty());
        assert!(c.read_at_path("/short", 500, 10).unwrap().is_empty());
    }

    #[test]
    fn fd_read_write_seek() {
        let (_d, c) = cluster(3);
        let fd = c
            .open("/fd-file", OpenFlags::create_truncate().with_exclusive())
            .unwrap();
        // create_truncate is write-only; reopen for read-write.
        c.close(fd).unwrap();
        let fd = c.open("/fd-file", OpenFlags::RDWR).unwrap();
        assert_eq!(c.write(fd, b"abcdef").unwrap(), 6);
        assert_eq!(c.lseek(fd, 0, Whence::Set).unwrap(), 0);
        assert_eq!(c.read(fd, 3).unwrap(), b"abc");
        assert_eq!(c.read(fd, 10).unwrap(), b"def");
        assert!(c.read(fd, 10).unwrap().is_empty(), "at EOF");
        assert_eq!(c.lseek(fd, -2, Whence::End).unwrap(), 4);
        assert_eq!(c.read(fd, 10).unwrap(), b"ef");
        c.close(fd).unwrap();
        assert!(matches!(c.read(fd, 1), Err(GkfsError::BadFileDescriptor)));
    }

    #[test]
    fn pread_pwrite_do_not_move_position() {
        let (_d, c) = cluster(2);
        let fd = c.open("/p", OpenFlags::RDWR.with_create()).unwrap();
        c.pwrite(fd, 0, b"0123456789").unwrap();
        assert_eq!(c.pread(fd, 4, 3).unwrap(), b"456");
        assert_eq!(c.files().get(fd).unwrap().pos(), 0, "position unmoved");
        assert_eq!(c.read(fd, 2).unwrap(), b"01");
        c.close(fd).unwrap();
    }

    #[test]
    fn append_mode_writes_at_eof() {
        let (_d, c) = cluster(2);
        c.create("/log", 0o644).unwrap();
        c.write_at_path("/log", 0, b"first").unwrap();
        let fd = c.open("/log", OpenFlags::WRONLY.with_append()).unwrap();
        c.write(fd, b"|second").unwrap();
        c.close(fd).unwrap();
        assert_eq!(c.read_at_path("/log", 0, 100).unwrap(), b"first|second");
    }

    #[test]
    fn open_nonexistent_fails_without_create() {
        let (_d, c) = cluster(2);
        assert!(matches!(
            c.open("/nope", OpenFlags::RDONLY),
            Err(GkfsError::NotFound)
        ));
        // O_CREAT|O_EXCL on existing file fails.
        c.create("/exists", 0o644).unwrap();
        assert!(matches!(
            c.open("/exists", OpenFlags::WRONLY.with_create().with_exclusive()),
            Err(GkfsError::Exists)
        ));
        // Plain O_CREAT succeeds on existing file.
        let fd = c.open("/exists", OpenFlags::WRONLY.with_create()).unwrap();
        c.close(fd).unwrap();
    }

    #[test]
    fn open_creat_on_directory_is_eisdir() {
        let (_d, c) = cluster(2);
        c.mkdir("/a-dir", 0o755).unwrap();
        // Non-exclusive O_CREAT|O_WRONLY on a directory: EISDIR.
        assert!(matches!(
            c.open("/a-dir", OpenFlags::WRONLY.with_create()),
            Err(GkfsError::IsDirectory)
        ));
        // Read-only open of the directory (for the file map) works.
        let fd = c.open("/a-dir", OpenFlags::RDONLY.with_create()).unwrap();
        assert_eq!(c.files().get(fd).unwrap().kind, FileKind::Directory);
        c.close(fd).unwrap();
        // Exclusive create of the same path still refuses (Exists).
        assert!(matches!(
            c.open("/a-dir", OpenFlags::WRONLY.with_create().with_exclusive()),
            Err(GkfsError::Exists)
        ));
    }

    #[test]
    fn open_truncate_clears_data() {
        let (_d, c) = cluster(2);
        c.create("/t", 0o644).unwrap();
        c.write_at_path("/t", 0, b"old contents").unwrap();
        let fd = c.open("/t", OpenFlags::WRONLY.with_truncate()).unwrap();
        c.close(fd).unwrap();
        assert_eq!(c.stat("/t").unwrap().size, 0);
        assert!(c.read_at_path("/t", 0, 100).unwrap().is_empty());
    }

    #[test]
    fn mkdir_readdir_rmdir() {
        let (_d, c) = cluster(4);
        c.mkdir("/dir", 0o755).unwrap();
        for i in 0..20 {
            c.create(&format!("/dir/f{i:02}"), 0o644).unwrap();
        }
        c.mkdir("/dir/sub", 0o755).unwrap();
        let entries = c.readdir("/dir").unwrap();
        assert_eq!(entries.len(), 21);
        assert!(entries.windows(2).all(|w| w[0].name <= w[1].name), "sorted");
        assert_eq!(
            entries.iter().filter(|e| e.kind == FileKind::Directory).count(),
            1
        );
        // Non-empty directory refuses rmdir.
        assert!(matches!(c.rmdir("/dir"), Err(GkfsError::NotEmpty)));
        for i in 0..20 {
            c.unlink(&format!("/dir/f{i:02}")).unwrap();
        }
        c.rmdir("/dir/sub").unwrap();
        c.rmdir("/dir").unwrap();
        assert!(matches!(c.stat("/dir"), Err(GkfsError::NotFound)));
    }

    #[test]
    fn readdir_reports_sizes_like_ls_l() {
        // §III-A motivates readdir with `ls -l`: the listing must carry
        // sizes without a per-entry stat round.
        let (_d, c) = cluster(3);
        c.mkdir("/ls", 0o755).unwrap();
        c.create("/ls/small", 0o644).unwrap();
        c.write_at_path("/ls/small", 0, b"12345").unwrap();
        c.create("/ls/large", 0o644).unwrap();
        c.write_at_path("/ls/large", 0, &vec![0u8; 10_000]).unwrap();
        c.mkdir("/ls/sub", 0o755).unwrap();
        let entries = c.readdir("/ls").unwrap();
        let by_name: std::collections::HashMap<&str, &gkfs_common::types::Dirent> =
            entries.iter().map(|e| (e.name.as_str(), e)).collect();
        assert_eq!(by_name["small"].size, 5);
        assert_eq!(by_name["large"].size, 10_000);
        assert_eq!(by_name["sub"].size, 0);
        assert_eq!(by_name["sub"].kind, FileKind::Directory);
    }

    #[test]
    fn readdir_root_and_type_errors() {
        let (_d, c) = cluster(2);
        c.create("/a", 0o644).unwrap();
        let root = c.readdir("/").unwrap();
        assert_eq!(root.len(), 1);
        assert!(matches!(c.readdir("/a"), Err(GkfsError::NotDirectory)));
        assert!(matches!(c.rmdir("/a"), Err(GkfsError::NotDirectory)));
        assert!(matches!(c.unlink("/"), Err(GkfsError::IsDirectory)));
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let config = ClusterConfig::new(3).with_chunk_size(4096);
        let (_d, c) = cluster_with(3, config);
        c.create("/t", 0o644).unwrap();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 256) as u8).collect();
        c.write_at_path("/t", 0, &data).unwrap();
        c.truncate("/t", 5000).unwrap();
        assert_eq!(c.stat("/t").unwrap().size, 5000);
        let back = c.read_at_path("/t", 0, 20_000).unwrap();
        assert_eq!(back, &data[..5000]);
        // Extending truncate zero-fills.
        c.truncate("/t", 8000).unwrap();
        assert_eq!(c.stat("/t").unwrap().size, 8000);
        let back = c.read_at_path("/t", 0, 8000).unwrap();
        assert_eq!(&back[..5000], &data[..5000]);
        assert!(back[5000..].iter().all(|&b| b == 0));
    }

    #[test]
    fn unsupported_operations() {
        let (_d, c) = cluster(1);
        assert!(matches!(c.rename("/a", "/b"), Err(GkfsError::Unsupported(_))));
        assert!(matches!(c.link("/a", "/b"), Err(GkfsError::Unsupported(_))));
        assert!(matches!(c.symlink("/a", "/b"), Err(GkfsError::Unsupported(_))));
    }

    #[test]
    fn size_cache_buffers_and_flushes() {
        let config = ClusterConfig::new(2).with_size_cache(8);
        let (_d, c) = cluster_with(2, config);
        c.create("/cached", 0o644).unwrap();
        for i in 0..5 {
            c.write_at_path("/cached", i * 10, &[1u8; 10]).unwrap();
        }
        // Fewer writes than the window: nothing sent yet, but the
        // writing client still sees its own size.
        assert_eq!(c.stats().size_updates_sent.load(Ordering::Relaxed), 0);
        assert_eq!(c.stat("/cached").unwrap().size, 50);
        c.flush_size("/cached").unwrap();
        assert_eq!(c.stats().size_updates_sent.load(Ordering::Relaxed), 1);
        // After flush the daemons agree.
        for i in 5..8 {
            c.write_at_path("/cached", i * 10, &[1u8; 10]).unwrap();
        }
        for i in 8..16 {
            c.write_at_path("/cached", i * 10, &[1u8; 10]).unwrap();
        }
        // 11 buffered writes crossed the window of 8 once.
        assert!(c.stats().size_updates_sent.load(Ordering::Relaxed) >= 2);
        c.flush_all().unwrap();
        assert_eq!(c.stat("/cached").unwrap().size, 160);
    }

    #[test]
    fn concurrent_shared_file_writers_converge() {
        let config = ClusterConfig::new(4).with_chunk_size(4096);
        let (_d, c) = cluster_with(4, config);
        c.create("/shared", 0o644).unwrap();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..50u64 {
                        let off = (t * 50 + i) * 100;
                        c.write_at_path("/shared", off, &[t as u8 + 1; 100]).unwrap();
                    }
                });
            }
        });
        assert_eq!(c.stat("/shared").unwrap().size, 40_000);
        let data = c.read_at_path("/shared", 0, 40_000).unwrap();
        assert!(data.iter().all(|&b| (1..=8).contains(&b)));
    }

    #[test]
    fn deep_paths_and_many_files_balance() {
        let (_d, c) = cluster(8);
        for i in 0..400 {
            c.create(&format!("/load/f{i}"), 0o644).unwrap();
        }
        let stats = c.cluster_stats().unwrap();
        let counts: Vec<u64> = stats.iter().map(|s| s.meta_entries).collect();
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 401, "400 files + root (no /load dir needed: flat ns)");
        let max = *counts.iter().max().unwrap();
        assert!(max < 120, "metadata should balance, worst node has {max}");
    }

    #[test]
    fn write_local_distribution_pins_data_to_own_node() {
        use gkfs_common::config::DistributorKind;
        let config = ClusterConfig::new(4)
            .with_chunk_size(4096)
            .with_distributor(DistributorKind::WriteLocal);
        let daemons: Vec<Arc<Daemon>> = (0..4)
            .map(|_| Daemon::spawn(gkfs_common::DaemonConfig::default()).unwrap())
            .collect();
        let endpoints = |d: &Vec<Arc<Daemon>>| -> Vec<Arc<dyn Endpoint>> {
            d.iter().map(|x| x.endpoint()).collect()
        };

        // Rank on node 2 writes its private file: every byte must land
        // on daemon 2 (the BurstFS pattern).
        let c2 = GekkoClient::mount_on(endpoints(&daemons), &config, 2).unwrap();
        c2.create("/rank2.out", 0o644).unwrap();
        let data: Vec<u8> = (0..50_000u32).map(|i| i as u8).collect();
        c2.write_at_path("/rank2.out", 0, &data).unwrap();
        for (n, d) in daemons.iter().enumerate() {
            let (_, w_bytes, _, _) = d.backends().data.stats().snapshot();
            if n == 2 {
                assert_eq!(w_bytes, 50_000, "all data on the local node");
            } else {
                assert_eq!(w_bytes, 0, "node {n} must hold nothing");
            }
        }
        // The writer reads its own data back fine.
        assert_eq!(c2.read_at_path("/rank2.out", 0, 50_000).unwrap(), data);

        // The documented BurstFS limitation: a client on another node
        // can stat the file (metadata is hash-placed) but resolves the
        // chunks to *its* node and sees holes.
        let c0 = GekkoClient::mount_on(endpoints(&daemons), &config, 0).unwrap();
        assert_eq!(c0.stat("/rank2.out").unwrap().size, 50_000);
        let cross = c0.read_at_path("/rank2.out", 0, 100).unwrap();
        assert_eq!(cross, vec![0u8; 100], "cross-node read sees holes");
    }

    #[test]
    fn mount_validates_config() {
        let d = Daemon::spawn(gkfs_common::DaemonConfig::default()).unwrap();
        let eps: Vec<Arc<dyn Endpoint>> = vec![d.endpoint()];
        assert!(GekkoClient::mount(eps, &ClusterConfig::new(2)).is_err());
    }

    #[test]
    fn fsck_clean_namespace() {
        let config = ClusterConfig::new(4).with_chunk_size(4096);
        let (_d, c) = cluster_with(4, config);
        c.mkdir("/data", 0o755).unwrap();
        for i in 0..10 {
            let p = format!("/data/f{i}");
            c.create(&p, 0o644).unwrap();
            c.write_at_path(&p, 0, &vec![1u8; 10_000]).unwrap();
        }
        let report = c.fsck().unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.files_checked, 10);
        assert!(report.directories_checked >= 2, "root + /data");
        assert!(report.chunkless_files.is_empty());
    }

    #[test]
    fn fsck_finds_and_purges_orphan_chunks() {
        let config = ClusterConfig::new(3).with_chunk_size(4096);
        let (daemons, c) = cluster_with(3, config);
        c.create("/will-orphan", 0o644).unwrap();
        c.write_at_path("/will-orphan", 0, &vec![7u8; 30_000]).unwrap();
        // Sabotage: remove the metadata entry directly on its owner,
        // leaving the chunks stranded (a remove whose fan-out died).
        let mut removed = false;
        for d in &daemons {
            if d.backends().meta.remove("/will-orphan").is_ok() {
                removed = true;
                break;
            }
        }
        assert!(removed);
        let report = c.fsck().unwrap();
        assert!(!report.is_clean());
        assert!(report
            .orphan_chunks
            .iter()
            .all(|(_, p)| p == "/will-orphan"));
        let purged = c.fsck_purge(&report).unwrap();
        assert!(purged > 0);
        // Second pass: clean.
        assert!(c.fsck().unwrap().is_clean());
    }

    #[test]
    fn fsck_reports_truncate_extended_files_as_chunkless() {
        let (_d, c) = cluster(2);
        c.create("/sparse-only", 0o644).unwrap();
        c.truncate("/sparse-only", 5000).unwrap();
        let report = c.fsck().unwrap();
        assert!(report.is_clean(), "sparse files are not damage");
        assert_eq!(report.chunkless_files, vec!["/sparse-only".to_string()]);
    }

    #[test]
    fn stat_cache_eliminates_round_trips_but_sees_own_writes() {
        let config = ClusterConfig::new(2).with_stat_cache_ttl_ms(60_000);
        let (daemons, c) = cluster_with(2, config);
        c.create("/hot", 0o644).unwrap();
        c.write_at_path("/hot", 0, b"12345").unwrap();

        let gets = |ds: &Vec<Arc<Daemon>>| -> u64 {
            ds.iter()
                .map(|d| d.backends().meta.db().stats().gets.load(Ordering::Relaxed))
                .sum()
        };
        let before = gets(&daemons);
        // A storm of stats: at most one daemon round trip.
        for _ in 0..100 {
            assert_eq!(c.stat("/hot").unwrap().size, 5);
        }
        let delta = gets(&daemons) - before;
        assert!(delta <= 1, "cache should absorb the storm, saw {delta} gets");

        // The client's own writes stay visible (bump_size).
        c.write_at_path("/hot", 100, b"x").unwrap();
        assert_eq!(c.stat("/hot").unwrap().size, 101);
        // Truncate invalidates; next stat refetches the exact value.
        c.truncate("/hot", 3).unwrap();
        assert_eq!(c.stat("/hot").unwrap().size, 3);
        // Unlink invalidates; stat misses cleanly.
        c.unlink("/hot").unwrap();
        assert!(c.stat("/hot").is_err());
    }

    #[test]
    fn stat_cache_staleness_is_bounded_by_ttl() {
        let config = ClusterConfig::new(2).with_stat_cache_ttl_ms(30);
        let (_d, observer) = cluster_with(2, config);
        observer.create("/ttl", 0o644).unwrap();
        // Prime the observer's cache with size 0.
        assert_eq!(observer.stat("/ttl").unwrap().size, 0);
        // A different client (no shared cache) grows the file.
        let writer = {
            let endpoints: Vec<Arc<dyn Endpoint>> =
                _d.iter().map(|d| d.endpoint()).collect();
            GekkoClient::mount(endpoints, &ClusterConfig::new(2)).unwrap()
        };
        writer.write_at_path("/ttl", 0, b"abcdef").unwrap();
        // Within the TTL the observer may still see the stale size;
        // after expiry it must see the truth.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(observer.stat("/ttl").unwrap().size, 6);
    }
}
