//! The client-side size-update cache — the paper's shared-file fix.
//!
//! §IV-B: *"No more than approximately 150K write operations per
//! second were achieved. This was due to network contention on the
//! daemon which maintains the shared file's metadata whose size needs
//! to be constantly updated. To overcome this limitation, we added a
//! rudimentary client cache to locally buffer size updates of a number
//! of write operations before they are send to the node that manages
//! the file's metadata."*
//!
//! The cache keeps, per path, the maximum size candidate seen and a
//! count of buffered updates. When the count reaches the configured
//! window the entry is drained and the caller ships one merged update.
//! `flush`/`close`/`fsync` drain unconditionally, preserving the
//! paper's consistency story (a reader statting mid-burst may see a
//! stale size — exactly the relaxation the paper accepts).

use gkfs_common::lock::{rank, OrderedMutex};
use std::collections::HashMap;

/// One drained update to be sent to the metadata owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingSize {
    /// Path.
    pub path: String,
    /// Size.
    pub size: u64,
    /// Mtime ns.
    pub mtime_ns: u64,
}

#[derive(Default)]
struct Entry {
    max_size: u64,
    mtime_ns: u64,
    ops: usize,
}

/// Buffer of pending size updates. `window == 0` disables buffering —
/// every record immediately returns a pending update (the paper's
/// default synchronous mode).
pub struct SizeCache {
    window: usize,
    sizes: OrderedMutex<HashMap<String, Entry>>,
}

impl SizeCache {
    /// New.
    pub fn new(window: usize) -> SizeCache {
        SizeCache {
            window,
            sizes: OrderedMutex::new(rank::CLIENT_SIZE_CACHE, HashMap::new()),
        }
    }

    /// Is buffering active?
    pub fn enabled(&self) -> bool {
        self.window > 0
    }

    /// Record a write's size candidate. Returns `Some(update)` when the
    /// update must be sent now (cache disabled, or window filled).
    pub fn record(&self, path: &str, size: u64, mtime_ns: u64) -> Option<PendingSize> {
        if self.window == 0 {
            return Some(PendingSize {
                path: path.to_string(),
                size,
                mtime_ns,
            });
        }
        let mut sizes = self.sizes.lock();
        let e = sizes.entry(path.to_string()).or_default();
        e.max_size = e.max_size.max(size);
        e.mtime_ns = e.mtime_ns.max(mtime_ns);
        e.ops += 1;
        if e.ops >= self.window {
            let out = PendingSize {
                path: path.to_string(),
                size: e.max_size,
                mtime_ns: e.mtime_ns,
            };
            sizes.remove(path);
            Some(out)
        } else {
            None
        }
    }

    /// Peek at the buffered size candidate for `path` without draining
    /// it. The client uses this so its *own* stats see its buffered
    /// writes even before they are flushed to the metadata owner.
    pub fn peek(&self, path: &str) -> Option<u64> {
        self.sizes.lock().get(path).map(|e| e.max_size)
    }

    /// Drain the pending update for one path (close/fsync).
    pub fn drain(&self, path: &str) -> Option<PendingSize> {
        self.sizes.lock().remove(path).map(|e| PendingSize {
            path: path.to_string(),
            size: e.max_size,
            mtime_ns: e.mtime_ns,
        })
    }

    /// Drain everything (unmount).
    pub fn drain_all(&self) -> Vec<PendingSize> {
        self.sizes
            .lock()
            .drain()
            .map(|(path, e)| PendingSize {
                path,
                size: e.max_size,
                mtime_ns: e.mtime_ns,
            })
            .collect()
    }

    /// Number of paths with buffered updates.
    pub fn pending_paths(&self) -> usize {
        self.sizes.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_passes_through() {
        let c = SizeCache::new(0);
        assert!(!c.enabled());
        let p = c.record("/f", 100, 1).unwrap();
        assert_eq!(p.size, 100);
        assert_eq!(c.pending_paths(), 0);
    }

    #[test]
    fn window_coalesces_to_max() {
        let c = SizeCache::new(4);
        assert!(c.record("/f", 100, 1).is_none());
        assert!(c.record("/f", 50, 2).is_none());
        assert!(c.record("/f", 300, 3).is_none());
        let p = c.record("/f", 200, 4).unwrap(); // 4th op fills window
        assert_eq!(p.size, 300, "max of the window");
        assert_eq!(p.mtime_ns, 4);
        assert_eq!(c.pending_paths(), 0);
    }

    #[test]
    fn paths_are_independent() {
        let c = SizeCache::new(2);
        assert!(c.record("/a", 10, 1).is_none());
        assert!(c.record("/b", 20, 1).is_none());
        assert_eq!(c.pending_paths(), 2);
        assert_eq!(c.record("/a", 5, 2).unwrap().size, 10);
        assert_eq!(c.pending_paths(), 1);
    }

    #[test]
    fn drain_flushes_partial_windows() {
        let c = SizeCache::new(100);
        c.record("/f", 42, 7);
        let p = c.drain("/f").unwrap();
        assert_eq!(p.size, 42);
        assert!(c.drain("/f").is_none(), "second drain is empty");
        assert!(c.drain("/never").is_none());
    }

    #[test]
    fn drain_all_empties_cache() {
        let c = SizeCache::new(100);
        c.record("/a", 1, 1);
        c.record("/b", 2, 1);
        let mut drained = c.drain_all();
        drained.sort_by(|a, b| a.path.cmp(&b.path));
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].path, "/a");
        assert_eq!(c.pending_paths(), 0);
    }

    #[test]
    fn concurrent_records_never_lose_the_max() {
        let c = SizeCache::new(10);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..100u64 {
                        // Ship any produced updates into a fake "sent" max.
                        let _ = c.record("/hot", t * 1000 + i, i);
                    }
                });
            }
        });
        // Whatever remains buffered plus what was shipped covered 7099;
        // we can at least assert the leftover is consistent.
        if let Some(p) = c.drain("/hot") {
            assert!(p.size <= 7099);
        }
    }
}
