//! Optional client-side metadata cache — the paper's §V future-work
//! item *"evaluate benefits of caching"*.
//!
//! GekkoFS is deliberately cache-less (§III-A) so that every operation
//! measures raw capability and single-file consistency stays strong.
//! This cache is the experiment the paper proposes: stat results are
//! kept for a bounded TTL, trading staleness (another client's size
//! update may be invisible for up to `ttl`) for round-trip elimination
//! in stat-heavy workloads (`ls -l` storms, open-before-read chains,
//! EOF probing in the read path).
//!
//! Local mutations (write/truncate/remove by *this* client) invalidate
//! or refresh eagerly, so a client always reads its own writes.

use gkfs_common::Metadata;
use gkfs_common::lock::{rank, OrderedMutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

struct Entry {
    meta: Metadata,
    fetched: Instant,
}

/// TTL-bounded map of path → metadata.
pub struct StatCache {
    ttl: Duration,
    entries: OrderedMutex<HashMap<String, Entry>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl StatCache {
    /// New.
    pub fn new(ttl: Duration) -> StatCache {
        StatCache {
            ttl,
            entries: OrderedMutex::new(rank::CLIENT_STAT_CACHE, HashMap::new()),
            hits: Default::default(),
            misses: Default::default(),
        }
    }

    /// Fresh cached metadata for `path`, if any.
    pub fn get(&self, path: &str) -> Option<Metadata> {
        let mut entries = self.entries.lock();
        match entries.get(path) {
            Some(e) if e.fetched.elapsed() <= self.ttl => {
                self.hits
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Some(e.meta.clone())
            }
            Some(_) => {
                entries.remove(path);
                self.misses
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                None
            }
            None => {
                self.misses
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                None
            }
        }
    }

    /// Record freshly fetched metadata.
    pub fn put(&self, path: &str, meta: Metadata) {
        self.entries.lock().insert(
            path.to_string(),
            Entry {
                meta,
                fetched: Instant::now(),
            },
        );
    }

    /// Update the cached size after a local write, without resetting
    /// the TTL clock (the entry is still only as fresh as its fetch).
    pub fn bump_size(&self, path: &str, candidate: u64, mtime_ns: u64) {
        if let Some(e) = self.entries.lock().get_mut(path) {
            e.meta.size = e.meta.size.max(candidate);
            e.meta.mtime_ns = e.meta.mtime_ns.max(mtime_ns);
        }
    }

    /// Drop one entry (local truncate/remove/create).
    pub fn invalidate(&self, path: &str) {
        self.entries.lock().remove(path);
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(size: u64) -> Metadata {
        let mut m = Metadata::new_file(1);
        m.size = size;
        m
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let c = StatCache::new(Duration::from_millis(40));
        assert!(c.get("/f").is_none());
        c.put("/f", meta(10));
        assert_eq!(c.get("/f").unwrap().size, 10);
        std::thread::sleep(Duration::from_millis(60));
        assert!(c.get("/f").is_none(), "expired");
        let (hits, misses) = c.counters();
        assert_eq!(hits, 1);
        assert_eq!(misses, 2);
    }

    #[test]
    fn bump_size_keeps_maximum() {
        let c = StatCache::new(Duration::from_secs(10));
        c.put("/f", meta(100));
        c.bump_size("/f", 50, 2); // smaller: ignored
        assert_eq!(c.get("/f").unwrap().size, 100);
        c.bump_size("/f", 500, 3);
        assert_eq!(c.get("/f").unwrap().size, 500);
        // bump on a missing entry is a no-op, not an insert.
        c.bump_size("/ghost", 1, 1);
        assert!(c.get("/ghost").is_none());
    }

    #[test]
    fn invalidate_and_clear() {
        let c = StatCache::new(Duration::from_secs(10));
        c.put("/a", meta(1));
        c.put("/b", meta(2));
        c.invalidate("/a");
        assert!(c.get("/a").is_none());
        assert!(c.get("/b").is_some());
        c.clear();
        assert!(c.get("/b").is_none());
    }
}
