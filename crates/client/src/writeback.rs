//! Per-handle write-back buffering — the client half of the
//! BuffetFS/AsyncFS-style small-write optimization.
//!
//! GekkoFS pays one chunk RPC (plus a size update) per `write`, which
//! is exactly the small-op tax the paper's 8 KiB IOR numbers show.
//! A [`WbBuf`] coalesces small *sequential* writes on one open handle
//! into a single contiguous run of bytes; the run is written out as
//! one chunk-aligned batch when it reaches capacity, when a disjoint
//! write displaces it, or when `flush`/`fsync`/`close` force it.
//!
//! The buffer itself is pure data: no locks, no RPCs. The handle owns
//! it behind an `OrderedMutex` (rank `CLIENT_WB`), and the client is
//! careful to *take* the run out under the lock and send it after the
//! guard is dropped — an RPC under the buffer lock would violate the
//! lock hierarchy (GKL002).
//!
//! Consistency contract (see DESIGN.md "Open handles, write-back and
//! leases"): buffered bytes are visible to reads **through the same
//! handle** (read overlays the run) and to `stat` on the same client
//! (the handle size includes the buffered tail). Other clients see
//! them only after a flush — the same relaxation GekkoFS already
//! accepts for the §IV-B size cache.

/// One contiguous run of buffered bytes, starting at `start`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WbRun {
    /// File offset of the first buffered byte.
    pub start: u64,
    /// The buffered bytes.
    pub data: Vec<u8>,
}

impl WbRun {
    /// One past the last buffered byte.
    pub fn end(&self) -> u64 {
        self.start + self.data.len() as u64
    }
}

/// What [`WbBuf::offer`] decided about a write.
#[derive(Debug, PartialEq, Eq)]
pub enum Absorb {
    /// The bytes were absorbed into the buffer. If a previous run was
    /// displaced (disjoint write), it must be written out now.
    Buffered {
        /// Displaced run to flush, if any.
        flush_first: Option<WbRun>,
    },
    /// The write is too large for the buffer: the caller writes it
    /// through directly, after flushing the returned run (program
    /// order: buffered bytes precede this write).
    Through {
        /// Pending run to flush before the write-through, if any.
        flush_first: Option<WbRun>,
    },
}

/// A bounded write-back buffer holding at most one contiguous run.
///
/// `capacity == 0` disables buffering: every offer is `Through`.
#[derive(Debug)]
pub struct WbBuf {
    capacity: usize,
    run: Option<WbRun>,
}

impl WbBuf {
    /// New buffer with the given capacity in bytes.
    pub fn new(capacity: usize) -> WbBuf {
        WbBuf {
            capacity,
            run: None,
        }
    }

    /// Is buffering enabled?
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.run.as_ref().map_or(0, |r| r.data.len())
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.run.is_none()
    }

    /// One past the last buffered byte, if any.
    pub fn end(&self) -> Option<u64> {
        self.run.as_ref().map(|r| r.end())
    }

    /// Offer a write to the buffer. Decides between absorbing the
    /// bytes (sequential append, in-run overwrite, or a fresh run) and
    /// writing through (oversized or disabled), and reports any
    /// displaced run the caller must flush first.
    pub fn offer(&mut self, offset: u64, data: &[u8]) -> Absorb {
        if self.capacity == 0 || data.len() >= self.capacity {
            // Oversized writes skip the buffer entirely; any pending
            // run goes out first so earlier bytes are not reordered
            // past later ones on overlapping ranges.
            return Absorb::Through {
                flush_first: self.run.take(),
            };
        }
        match &mut self.run {
            None => {
                self.run = Some(WbRun {
                    start: offset,
                    data: data.to_vec(),
                });
                Absorb::Buffered { flush_first: None }
            }
            Some(run) if offset >= run.start && offset <= run.end() => {
                // Overlapping or exactly-appending write: copy over the
                // overlap and extend the tail. This is the sequential
                // fast path (`offset == run.end()`) and the in-run
                // rewrite path in one.
                let rel = (offset - run.start) as usize;
                let overlap = data.len().min(run.data.len() - rel);
                run.data[rel..rel + overlap].copy_from_slice(&data[..overlap]);
                run.data.extend_from_slice(&data[overlap..]);
                Absorb::Buffered { flush_first: None }
            }
            Some(_) => {
                // Disjoint (or backwards-overlapping) write: displace
                // the old run and start a new one here.
                let old = self.run.take();
                self.run = Some(WbRun {
                    start: offset,
                    data: data.to_vec(),
                });
                Absorb::Buffered { flush_first: old }
            }
        }
    }

    /// Has the run reached capacity (time to drain)?
    pub fn full(&self) -> bool {
        self.capacity > 0 && self.len() >= self.capacity
    }

    /// Take the pending run out (flush/fsync/close/drain).
    pub fn take(&mut self) -> Option<WbRun> {
        self.run.take()
    }

    /// Clone of the pending run, for read overlay (the run stays
    /// buffered; reads must see buffered bytes without forcing I/O).
    pub fn snapshot(&self) -> Option<WbRun> {
        self.run.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_passes_everything_through() {
        let mut b = WbBuf::new(0);
        assert!(!b.enabled());
        match b.offer(0, b"abc") {
            Absorb::Through { flush_first: None } => {}
            other => panic!("{other:?}"),
        }
        assert!(b.is_empty());
    }

    #[test]
    fn sequential_writes_coalesce_into_one_run() {
        let mut b = WbBuf::new(64);
        assert_eq!(b.offer(0, b"hello"), Absorb::Buffered { flush_first: None });
        assert_eq!(b.offer(5, b" world"), Absorb::Buffered { flush_first: None });
        let run = b.take().unwrap();
        assert_eq!(run.start, 0);
        assert_eq!(run.data, b"hello world");
        assert!(b.is_empty());
    }

    #[test]
    fn in_run_overwrite_patches_buffered_bytes() {
        let mut b = WbBuf::new(64);
        b.offer(10, b"xxxxxxxx");
        b.offer(12, b"AB");
        let run = b.snapshot().unwrap();
        assert_eq!(run.start, 10);
        assert_eq!(run.data, b"xxABxxxx");
        // Overwrite extending past the tail grows the run.
        b.offer(16, b"tailtail");
        assert_eq!(b.snapshot().unwrap().data, b"xxABxxtailtail");
        assert_eq!(b.end(), Some(24));
    }

    #[test]
    fn disjoint_write_displaces_the_old_run() {
        let mut b = WbBuf::new(64);
        b.offer(0, b"first");
        match b.offer(1000, b"second") {
            Absorb::Buffered {
                flush_first: Some(old),
            } => {
                assert_eq!(old.start, 0);
                assert_eq!(old.data, b"first");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(b.snapshot().unwrap().start, 1000);
    }

    #[test]
    fn backwards_write_also_displaces() {
        let mut b = WbBuf::new(64);
        b.offer(100, b"tail");
        match b.offer(90, b"head") {
            Absorb::Buffered {
                flush_first: Some(old),
            } => assert_eq!(old.start, 100),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_write_goes_through_after_flush() {
        let mut b = WbBuf::new(8);
        b.offer(0, b"abc");
        match b.offer(3, &[7u8; 32]) {
            Absorb::Through {
                flush_first: Some(old),
            } => assert_eq!(old.data, b"abc"),
            other => panic!("{other:?}"),
        }
        assert!(b.is_empty(), "through writes never populate the buffer");
    }

    #[test]
    fn full_signals_at_capacity() {
        let mut b = WbBuf::new(8);
        b.offer(0, b"1234");
        assert!(!b.full());
        b.offer(4, b"5678");
        assert!(b.full());
        assert_eq!(b.take().unwrap().data, b"12345678");
        assert!(!b.full());
    }

    #[test]
    fn model_check_random_small_writes() {
        // Deterministic pseudo-random writes against a Vec<u8> model:
        // replaying (flushes + buffered run) must equal the model.
        let mut state = 0x9E37u64;
        let mut rand = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..50 {
            let mut b = WbBuf::new(32);
            let mut model = vec![0u8; 256];
            let mut disk = vec![0u8; 256];
            let apply = |disk: &mut Vec<u8>, run: WbRun| {
                let s = run.start as usize;
                disk[s..s + run.data.len()].copy_from_slice(&run.data);
            };
            for _ in 0..40 {
                let off = rand(200);
                let len = (rand(24) + 1) as usize;
                let byte = rand(255) as u8 + 1;
                let data = vec![byte; len];
                model[off as usize..off as usize + len].copy_from_slice(&data);
                match b.offer(off, &data) {
                    Absorb::Buffered { flush_first } => {
                        if let Some(r) = flush_first {
                            apply(&mut disk, r);
                        }
                    }
                    Absorb::Through { flush_first } => {
                        if let Some(r) = flush_first {
                            apply(&mut disk, r);
                        }
                        apply(
                            &mut disk,
                            WbRun {
                                start: off,
                                data: data.clone(),
                            },
                        );
                    }
                }
                if b.full() {
                    let r = b.take().unwrap();
                    apply(&mut disk, r);
                }
            }
            if let Some(r) = b.take() {
                apply(&mut disk, r);
            }
            assert_eq!(disk, model);
        }
    }
}
