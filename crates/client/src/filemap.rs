//! The file map: file descriptors without the kernel.
//!
//! GekkoFS cannot use kernel descriptors for its own files — the
//! preload library owns a range of descriptor numbers and resolves
//! them itself. We reproduce that: descriptors start at a high base
//! (so they can never collide with real kernel fds when the C ABI is
//! preloaded into an application) and map to [`OpenFile`] records with
//! their own offset state.

use crate::writeback::WbBuf;
use gkfs_common::types::{FileKind, OpenFlags};
use gkfs_common::{GkfsError, Result};
use gkfs_common::lock::{rank, OrderedMutex, OrderedRwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};
use std::sync::Arc;

/// First descriptor handed out — mirrors GekkoFS' offset trick that
/// keeps its fd space disjoint from the kernel's.
pub const FD_BASE: i32 = 100_000;

/// One open file or directory.
pub struct OpenFile {
    /// Path.
    pub path: String,
    /// Flags.
    pub flags: OpenFlags,
    /// Kind.
    pub kind: FileKind,
    /// Current seek position. A lock (not an atomic) because
    /// read-modify-write sequences on it must be atomic with the I/O
    /// size decision.
    pos: OrderedMutex<u64>,
    /// The open-handle size cache: the file size as this handle knows
    /// it — seeded by the open-time stat (0 for exclusive creates and
    /// truncating opens), grown by this client's writes. Reads and
    /// `SEEK_END` consult it instead of paying a stat RPC; cross-client
    /// growth becomes visible on re-open (the GekkoFS handle contract).
    cached_size: AtomicU64,
    /// The handle's write-back buffer (capacity 0 = disabled).
    pub(crate) wb: OrderedMutex<WbBuf>,
}

impl OpenFile {
    /// New, with size 0 and write-back disabled (tests, simple opens).
    pub fn new(path: impl Into<String>, flags: OpenFlags, kind: FileKind) -> OpenFile {
        Self::with_state(path, flags, kind, 0, 0)
    }

    /// New, seeded with the open-time size and a write-back capacity.
    pub fn with_state(
        path: impl Into<String>,
        flags: OpenFlags,
        kind: FileKind,
        size: u64,
        wb_capacity: usize,
    ) -> OpenFile {
        OpenFile {
            path: path.into(),
            flags,
            kind,
            pos: OrderedMutex::new(rank::CLIENT_FILE_POS, 0),
            cached_size: AtomicU64::new(size),
            wb: OrderedMutex::new(rank::CLIENT_WB, WbBuf::new(wb_capacity)),
        }
    }

    /// The size as this handle knows it (open-time stat merged with
    /// this client's writes; excludes unflushed write-back bytes — see
    /// [`OpenFile::effective_size`] for the merged view).
    pub fn cached_size(&self) -> u64 {
        self.cached_size.load(Ordering::Acquire)
    }

    /// Record a locally-known size (truncate, authoritative re-stat).
    pub fn set_cached_size(&self, size: u64) {
        self.cached_size.store(size, Ordering::Release);
    }

    /// Grow the cached size to at least `candidate` (writes only ever
    /// extend; a concurrent truncate uses [`OpenFile::set_cached_size`]).
    pub fn grow_cached_size(&self, candidate: u64) {
        self.cached_size.fetch_max(candidate, Ordering::AcqRel);
    }

    /// The size including any unflushed write-back tail — what reads
    /// and `stat` through this handle must see.
    pub fn effective_size(&self) -> u64 {
        let buffered_end = self.wb.lock().end().unwrap_or(0);
        self.cached_size().max(buffered_end)
    }

    /// Current position.
    pub fn pos(&self) -> u64 {
        *self.pos.lock()
    }

    /// Set the position, returning the new value.
    pub fn seek_to(&self, pos: u64) -> u64 {
        *self.pos.lock() = pos;
        pos
    }

    /// Advance by `delta` from the current position and return the
    /// *starting* offset of the I/O — the atomic "claim" used by
    /// `read`/`write`.
    pub fn advance(&self, delta: u64) -> u64 {
        let mut p = self.pos.lock();
        let start = *p;
        *p = start + delta;
        start
    }
}

/// Descriptor table for one client.
pub struct FileMap {
    files: OrderedRwLock<HashMap<i32, Arc<OpenFile>>>,
    next_fd: AtomicI32,
}

impl Default for FileMap {
    fn default() -> Self {
        Self::new()
    }
}

impl FileMap {
    /// New.
    pub fn new() -> FileMap {
        FileMap {
            files: OrderedRwLock::new(rank::CLIENT_FILEMAP, HashMap::new()),
            next_fd: AtomicI32::new(FD_BASE),
        }
    }

    /// Insert an open file, returning its new descriptor.
    pub fn insert(&self, file: OpenFile) -> i32 {
        self.insert_arc(Arc::new(file))
    }

    /// Insert an already-shared open file (registering a handle's
    /// state record in the descriptor table).
    pub fn insert_arc(&self, file: Arc<OpenFile>) -> i32 {
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.files.write().insert(fd, file);
        fd
    }

    /// Resolve a descriptor.
    pub fn get(&self, fd: i32) -> Result<Arc<OpenFile>> {
        self.files
            .read()
            .get(&fd)
            .cloned()
            .ok_or(GkfsError::BadFileDescriptor)
    }

    /// Is this descriptor one of ours? (The preload layer uses this to
    /// decide whether to forward a call to the kernel.)
    pub fn owns(&self, fd: i32) -> bool {
        fd >= FD_BASE && self.files.read().contains_key(&fd)
    }

    /// Close a descriptor, returning the file it referenced.
    pub fn remove(&self, fd: i32) -> Result<Arc<OpenFile>> {
        self.files
            .write()
            .remove(&fd)
            .ok_or(GkfsError::BadFileDescriptor)
    }

    /// `dup`: new descriptor sharing the same open-file record
    /// (and therefore the same offset), as POSIX requires.
    pub fn dup(&self, fd: i32) -> Result<i32> {
        let file = self.get(fd)?;
        let new_fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.files.write().insert(new_fd, file);
        Ok(new_fd)
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// Is empty.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }

    /// Paths of all currently open files (used to flush size caches on
    /// unmount).
    pub fn open_paths(&self) -> Vec<String> {
        self.files
            .read()
            .values()
            .map(|f| f.path.clone())
            .collect()
    }

    /// Any open file for `path` — how the deprecated path-based shims
    /// route through an existing handle's size cache and write-back
    /// buffer instead of re-statting the metadata owner.
    pub fn find_by_path(&self, path: &str) -> Option<Arc<OpenFile>> {
        self.files
            .read()
            .values()
            .find(|f| f.path == path)
            .cloned()
    }

    /// All distinct open files (close-time flush fan-out on unmount).
    pub fn open_files(&self) -> Vec<Arc<OpenFile>> {
        let mut out: Vec<Arc<OpenFile>> = Vec::new();
        for f in self.files.read().values() {
            if !out.iter().any(|o| Arc::ptr_eq(o, f)) {
                out.push(Arc::clone(f));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str) -> OpenFile {
        OpenFile::new(path, OpenFlags::RDWR, FileKind::File)
    }

    #[test]
    fn insert_get_remove() {
        let map = FileMap::new();
        let fd = map.insert(file("/a"));
        assert!(fd >= FD_BASE);
        assert_eq!(map.get(fd).unwrap().path, "/a");
        assert!(map.owns(fd));
        assert!(!map.owns(3)); // a typical kernel fd
        map.remove(fd).unwrap();
        assert!(matches!(map.get(fd), Err(GkfsError::BadFileDescriptor)));
        assert!(matches!(map.remove(fd), Err(GkfsError::BadFileDescriptor)));
    }

    #[test]
    fn descriptors_are_unique() {
        let map = FileMap::new();
        let fds: Vec<i32> = (0..100).map(|i| map.insert(file(&format!("/f{i}")))).collect();
        let mut sorted = fds.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn dup_shares_offset() {
        let map = FileMap::new();
        let fd = map.insert(file("/x"));
        let fd2 = map.dup(fd).unwrap();
        assert_ne!(fd, fd2);
        map.get(fd).unwrap().seek_to(500);
        assert_eq!(map.get(fd2).unwrap().pos(), 500, "dup'd fds share position");
        // Closing one leaves the other usable.
        map.remove(fd).unwrap();
        assert_eq!(map.get(fd2).unwrap().path, "/x");
    }

    #[test]
    fn advance_claims_ranges_atomically() {
        let map = FileMap::new();
        let fd = map.insert(file("/seq"));
        let f = map.get(fd).unwrap();
        let mut starts: Vec<u64> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let f = f.clone();
                    s.spawn(move || (0..100).map(|_| f.advance(10)).collect::<Vec<u64>>())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        starts.sort();
        // 800 disjoint 10-byte claims: 0, 10, ..., 7990.
        assert_eq!(starts.len(), 800);
        for (i, s) in starts.iter().enumerate() {
            assert_eq!(*s, i as u64 * 10);
        }
    }

    #[test]
    fn open_paths_lists_all() {
        let map = FileMap::new();
        map.insert(file("/a"));
        map.insert(file("/b"));
        let mut paths = map.open_paths();
        paths.sort();
        assert_eq!(paths, vec!["/a", "/b"]);
    }
}
