//! Typed RPC wrappers: one function per daemon operation, with the
//! client half of the fault-handling layer.
//!
//! [`DaemonRing`] owns the per-daemon endpoints (the client's "address
//! book"). All placement decisions happen above, in
//! [`crate::client::GekkoClient`]; this layer encodes, sends, decodes
//! — and, since the retry layer, also owns **when a failed RPC is
//! tried again**:
//!
//! * Every wrapper runs under a [`RetryPolicy`] (bounded attempts,
//!   deterministic seeded backoff) and a per-operation [`Deadline`]
//!   from the cluster's [`RetryConfig`]. Aggregate operations pass one
//!   shared deadline to every constituent wait via
//!   [`ReplyFuture::wait_deadline`], so a striped write cannot stack N
//!   per-call timeouts.
//! * Each node has a [`NodeHealth`]: a [`CircuitBreaker`] plus retry
//!   and failure counters. After `breaker_threshold` consecutive
//!   transport failures the node fails fast with
//!   [`GkfsError::Unavailable`] instead of burning deadlines.
//! * Only **transport** errors ([`GkfsError::is_retryable`]) are
//!   retried. Application errors (`NotFound`, `Exists`, …) prove the
//!   daemon answered, so they record *success* with the breaker.
//! * Non-idempotent ops retry with **tolerance**: a retried `create`
//!   that hits `Exists`, or a retried remove that hits `NotFound`,
//!   treats the error as its own first attempt having been applied
//!   (the reply was lost, not the request). See DESIGN.md "Fault
//!   model" for the `O_EXCL` caveat this implies.
//!
//! Every operation comes in two flavors built from one generic
//! helper: the blocking wrapper (`stat`, `write_chunks`, …) and a
//! nonblocking `_nb` sibling returning a typed [`ReplyFuture`] — the
//! client's `margo_iforward`. Hot paths submit to every responsible
//! daemon first and only then wait, so wide striping runs at
//! transport speed with zero per-call thread spawns.

use bytes::Bytes;
use gkfs_common::distributor::NodeId;
use gkfs_common::retry::{BreakerState, CircuitBreaker, Deadline, RetryPolicy};
use gkfs_common::types::Dirent;
use gkfs_common::{FileKind, GkfsError, Metadata, Result, RetryConfig};
use gkfs_rpc::proto::*;
use gkfs_rpc::{Endpoint, Opcode, ReplyHandle, Request, Response};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Lost-reply tolerance hook: maps an application error seen on a
/// *retried* attempt to a success value when it proves the first
/// attempt was applied (e.g. `Exists` after a retried create).
type Tolerate<T> = Box<dyn Fn(&GkfsError) -> Option<T> + Send>;


/// Per-daemon health: the circuit breaker plus counters surfaced by
/// `cluster_stats` / `gkfs-cli df`.
#[derive(Debug)]
pub struct NodeHealth {
    breaker: CircuitBreaker,
    retries: AtomicU64,
    failures: AtomicU64,
}

impl NodeHealth {
    fn new(cfg: &RetryConfig) -> NodeHealth {
        NodeHealth {
            breaker: CircuitBreaker::new(
                cfg.breaker_threshold,
                Duration::from_millis(cfg.breaker_cooldown_ms),
            ),
            retries: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// Current breaker state (racy by nature; for reporting).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Consecutive transport failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.breaker.consecutive_failures()
    }

    /// RPC attempts beyond the first, across all operations.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Transport-level failures observed (app errors excluded).
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    fn record_success(&self) {
        self.breaker.record_success();
    }

    fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        self.breaker.record_failure();
    }

    fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time client-side health of one daemon, as shown by
/// `gkfs-cli df` next to the daemon's own counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeHealthSnapshot {
    /// Node id.
    pub node: NodeId,
    /// Circuit-breaker state at snapshot time.
    pub breaker: BreakerState,
    /// Consecutive transport failures since the last success.
    pub consecutive_failures: u32,
    /// RPC attempts beyond the first, across all operations.
    pub retries: u64,
    /// Transport-level failures observed (app errors excluded).
    pub failures: u64,
    /// Times the transport re-established its connection.
    pub reconnects: u64,
}

/// A typed in-flight RPC: the nonblocking half of a [`DaemonRing`]
/// wrapper. [`ReplyFuture::wait`] blocks for the response (bounded by
/// the endpoint timeout, the retry policy, and the operation
/// deadline), retries transport failures, surfaces remote errors, and
/// decodes the typed result.
///
/// A submit failure on the first attempt does **not** fail `_nb`
/// construction: it is carried inside the future and retried at
/// `wait`, so fan-out call sites keep their submit-all-then-wait-all
/// shape even while a daemon flaps.
pub struct ReplyFuture<T> {
    /// Outcome of attempt 0's submission.
    state: Result<ReplyHandle>,
    timeout: Duration,
    policy: RetryPolicy,
    deadline: Deadline,
    /// Jitter salt: unique per future, so concurrent retries against
    /// the same daemon de-synchronize.
    salt: u64,
    health: Arc<NodeHealth>,
    /// Re-submission closure for attempts ≥ 1 (checks the breaker,
    /// clones the cheap refcounted body/bulk).
    submit: Box<dyn Fn() -> Result<ReplyHandle> + Send>,
    /// Idempotency tolerance: maps an application error on a *retried*
    /// attempt to a success value when it proves the first attempt was
    /// applied (lost-reply semantics).
    tolerate: Option<Tolerate<T>>,
    decode: Box<dyn Fn(Response) -> Result<T> + Send>,
}

impl<T> ReplyFuture<T> {
    /// Block until the reply arrives (retrying transport failures
    /// under this future's own per-operation deadline) and decode it.
    pub fn wait(self) -> Result<T> {
        let deadline = self.deadline;
        self.wait_deadline(deadline)
    }

    /// Like [`ReplyFuture::wait`], but clamp every per-attempt wait
    /// and every backoff sleep to `deadline` — used by aggregate
    /// operations (striped writes, broadcasts) that share one budget
    /// across the whole fan-out.
    pub fn wait_deadline(self, deadline: Deadline) -> Result<T> {
        let ReplyFuture {
            state,
            timeout,
            policy,
            salt,
            health,
            submit,
            tolerate,
            decode,
            ..
        } = self;
        let attempts = policy.max_attempts.max(1);
        let mut attempt: u32 = 0;
        let mut pending = state;
        loop {
            let outcome: Result<T> = pending.and_then(|handle| {
                let resp = handle.wait(deadline.clamp(timeout))?.into_result()?;
                decode(resp)
            });
            match outcome {
                Ok(v) => {
                    health.record_success();
                    return Ok(v);
                }
                Err(e) if e.is_retryable() => {
                    health.record_failure();
                    attempt += 1;
                    if attempt >= attempts || deadline.expired() {
                        return Err(e);
                    }
                    let pause = deadline.clamp(policy.backoff(salt, attempt - 1));
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    if deadline.expired() {
                        return Err(e);
                    }
                    health.note_retry();
                    pending = submit();
                }
                Err(e) => {
                    // An app error on a retried attempt may prove the
                    // lost first attempt was applied: tolerate it.
                    if attempt > 0 {
                        if let Some(tol) = &tolerate {
                            if let Some(v) = tol(&e) {
                                health.record_success();
                                return Ok(v);
                            }
                        }
                    }
                    // A daemon that answered is healthy — app errors
                    // close the breaker. A breaker denial
                    // (Unavailable) never touches the counters: no
                    // request was sent.
                    if !matches!(e, GkfsError::Unavailable(_)) {
                        health.record_success();
                    }
                    return Err(e);
                }
            }
        }
    }
}

/// The set of daemon endpoints, indexed by [`NodeId`], plus the
/// client-side fault-handling state (retry policy, per-node health).
pub struct DaemonRing {
    endpoints: Vec<Arc<dyn Endpoint>>,
    retry: RetryConfig,
    policy: RetryPolicy,
    health: Vec<Arc<NodeHealth>>,
    /// Monotonic jitter-salt source (one per issued future).
    salts: AtomicU64,
    /// Logical RPCs issued (retries excluded) — every operation passes
    /// through [`DaemonRing::unary_tol`], so this is the ground truth
    /// the RPC-count regression gate and `ClientStats` report.
    rpcs: Arc<AtomicU64>,
}

impl DaemonRing {
    /// New, with the default [`RetryConfig`].
    pub fn new(endpoints: Vec<Arc<dyn Endpoint>>) -> DaemonRing {
        Self::with_retry(endpoints, RetryConfig::default())
    }

    /// New, with an explicit fault-handling configuration
    /// ([`RetryConfig::disabled`] restores single-attempt semantics).
    pub fn with_retry(endpoints: Vec<Arc<dyn Endpoint>>, retry: RetryConfig) -> DaemonRing {
        assert!(!endpoints.is_empty(), "need at least one daemon");
        let health = endpoints
            .iter()
            .map(|_| Arc::new(NodeHealth::new(&retry)))
            .collect();
        let policy = retry.policy();
        DaemonRing {
            endpoints,
            retry,
            policy,
            health,
            salts: AtomicU64::new(0),
            rpcs: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The shared logical-RPC counter (retries excluded). The client
    /// clones this into its [`crate::client::ClientStats`] so tests and
    /// `gkfs-cli df` can observe RPCs-per-op.
    pub fn rpc_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.rpcs)
    }

    /// Logical RPCs issued so far.
    pub fn rpcs_issued(&self) -> u64 {
        self.rpcs.load(Ordering::Relaxed)
    }

    /// Nodes.
    pub fn nodes(&self) -> usize {
        self.endpoints.len()
    }

    /// A fresh deadline for one logical client operation.
    pub fn op_deadline(&self) -> Deadline {
        self.retry.op_deadline()
    }

    /// Health of one daemon (breaker state, retry/failure counters).
    pub fn node_health(&self, node: NodeId) -> Result<&Arc<NodeHealth>> {
        self.health
            .get(node)
            .ok_or_else(|| GkfsError::Rpc(format!("no endpoint for node {node}")))
    }

    /// Health of every daemon, indexed by node id.
    pub fn health(&self) -> &[Arc<NodeHealth>] {
        &self.health
    }

    /// How many times node `node`'s transport re-dialed its daemon.
    pub fn reconnects(&self, node: NodeId) -> u64 {
        self.endpoints.get(node).map_or(0, |ep| ep.reconnects())
    }

    /// One [`NodeHealthSnapshot`] per daemon, in node order.
    pub fn health_snapshot(&self) -> Vec<NodeHealthSnapshot> {
        self.health
            .iter()
            .enumerate()
            .map(|(node, h)| NodeHealthSnapshot {
                node,
                breaker: h.breaker_state(),
                consecutive_failures: h.consecutive_failures(),
                retries: h.retries(),
                failures: h.failures(),
                reconnects: self.reconnects(node),
            })
            .collect()
    }

    fn ep(&self, node: NodeId) -> Result<&Arc<dyn Endpoint>> {
        self.endpoints
            .get(node)
            .ok_or_else(|| GkfsError::Rpc(format!("no endpoint for node {node}")))
    }

    /// The one generic nonblocking wrapper every opcode reduces to:
    /// encode is done by the caller (a body plus optional bulk), the
    /// typed decode runs at [`ReplyFuture::wait`]. `tolerate` is the
    /// idempotency escape hatch described on [`ReplyFuture`].
    ///
    /// Fails immediately only on a misrouted node id; a failed or
    /// breaker-denied submission is carried inside the returned future
    /// and retried (or surfaced) at wait time.
    fn unary_tol<T>(
        &self,
        node: NodeId,
        op: Opcode,
        body: impl Into<Bytes>,
        bulk: Bytes,
        tolerate: Option<Tolerate<T>>,
        decode: impl Fn(Response) -> Result<T> + Send + 'static,
    ) -> Result<ReplyFuture<T>> {
        let ep = Arc::clone(self.ep(node)?);
        let health = Arc::clone(&self.health[node]);
        self.rpcs.fetch_add(1, Ordering::Relaxed);
        let timeout = ep.timeout();
        let body: Bytes = body.into();
        let submit = {
            let health = Arc::clone(&health);
            Box::new(move || {
                if !health.breaker.allow() {
                    return Err(GkfsError::Unavailable(format!(
                        "node {node}: circuit breaker open"
                    )));
                }
                // Bytes clones are refcount bumps, not copies.
                ep.submit(Request::new(op, body.clone()).with_bulk(bulk.clone()))
            })
        };
        let state = submit();
        Ok(ReplyFuture {
            state,
            timeout,
            policy: self.policy.clone(),
            deadline: self.retry.op_deadline(),
            salt: self.salts.fetch_add(1, Ordering::Relaxed),
            health,
            submit,
            tolerate,
            decode: Box::new(decode),
        })
    }

    /// [`DaemonRing::unary_tol`] without tolerance — safe default for
    /// idempotent operations (reads, writes, stat, size updates …).
    fn unary_nb<T>(
        &self,
        node: NodeId,
        op: Opcode,
        body: impl Into<Bytes>,
        bulk: Bytes,
        decode: impl Fn(Response) -> Result<T> + Send + 'static,
    ) -> Result<ReplyFuture<T>> {
        self.unary_tol(node, op, body, bulk, None, decode)
    }

    /// Blocking sibling of [`DaemonRing::unary_nb`].
    fn unary<T>(
        &self,
        node: NodeId,
        op: Opcode,
        body: impl Into<Bytes>,
        decode: impl Fn(Response) -> Result<T> + Send + 'static,
    ) -> Result<T> {
        self.unary_nb(node, op, body, Bytes::new(), decode)?.wait()
    }

    /// Submit `f(node)` to every node, then wait for all replies in
    /// node order — pipelined fan-out (`margo_iforward` to the whole
    /// ring, then `margo_wait` on each handle) with zero thread
    /// spawns. The whole broadcast shares **one** operation deadline.
    /// Used for broadcast operations (readdir, remove, truncate,
    /// stats, fsck inventory).
    pub fn broadcast<T, F>(&self, f: F) -> Vec<Result<T>>
    where
        F: Fn(NodeId) -> Result<ReplyFuture<T>>,
    {
        let deadline = self.op_deadline();
        let inflight: Vec<Result<ReplyFuture<T>>> = (0..self.nodes()).map(f).collect();
        inflight
            .into_iter()
            .map(|fut| fut.and_then(|fut| fut.wait_deadline(deadline)))
            .collect()
    }

    /// Liveness check used during deployment.
    pub fn ping(&self, node: NodeId) -> Result<()> {
        self.ping_nb(node)?.wait()
    }

    /// Nonblocking [`DaemonRing::ping`].
    pub fn ping_nb(&self, node: NodeId) -> Result<ReplyFuture<()>> {
        self.unary_nb(node, Opcode::Ping, Bytes::new(), Bytes::new(), |_| Ok(()))
    }

    /// Create. Not idempotent — a lost reply leaves the entry behind —
    /// so a retried attempt tolerates `Exists` as "my first attempt
    /// was applied". The resulting `O_EXCL` ambiguity under connection
    /// loss is documented in DESIGN.md ("Fault model").
    pub fn create(
        &self,
        node: NodeId,
        path: &str,
        kind: FileKind,
        mode: u32,
        exclusive: bool,
        now_ns: u64,
    ) -> Result<()> {
        let req = CreateReq {
            path: path.to_string(),
            kind: match kind {
                FileKind::File => 0,
                FileKind::Directory => 1,
            },
            mode,
            exclusive,
            now_ns,
        };
        self.unary_tol(
            node,
            Opcode::Create,
            req.encode(),
            Bytes::new(),
            Some(Box::new(|e| {
                matches!(e, GkfsError::Exists).then_some(())
            })),
            |_| Ok(()),
        )?
        .wait()
    }

    /// Stat.
    pub fn stat(&self, node: NodeId, path: &str) -> Result<Metadata> {
        self.unary(node, Opcode::Stat, PathReq::new(path).encode(), |resp| {
            Metadata::decode(&resp.body)
        })
    }

    /// Remove the metadata entry; returns the removed entry's kind.
    /// Not idempotent — a retried attempt tolerates `NotFound` as "my
    /// first attempt was applied" (the kind is unknowable then; caller
    /// paths that retry discard it).
    pub fn remove_meta(&self, node: NodeId, path: &str) -> Result<FileKind> {
        self.unary_tol(
            node,
            Opcode::RemoveMeta,
            PathReq::new(path).encode(),
            Bytes::new(),
            Some(Box::new(|e| {
                matches!(e, GkfsError::NotFound).then_some(FileKind::File)
            })),
            |resp| match RemoveMetaResp::decode(&resp.body)?.kind {
                0 => Ok(FileKind::File),
                _ => Ok(FileKind::Directory),
            },
        )?
        .wait()
    }

    /// Update size.
    pub fn update_size(&self, node: NodeId, path: &str, size: u64, mtime_ns: u64) -> Result<()> {
        self.update_size_nb(node, path, size, mtime_ns)?.wait()
    }

    /// Nonblocking [`DaemonRing::update_size`] (flush fan-out).
    pub fn update_size_nb(
        &self,
        node: NodeId,
        path: &str,
        size: u64,
        mtime_ns: u64,
    ) -> Result<ReplyFuture<()>> {
        let req = UpdateSizeReq {
            path: path.to_string(),
            size,
            mtime_ns,
        };
        self.unary_nb(node, Opcode::UpdateSize, req.encode(), Bytes::new(), |_| {
            Ok(())
        })
    }

    /// Truncate meta.
    pub fn truncate_meta(&self, node: NodeId, path: &str, new_size: u64, mtime_ns: u64) -> Result<()> {
        let req = TruncateMetaReq {
            path: path.to_string(),
            new_size,
            mtime_ns,
        };
        self.unary(node, Opcode::TruncateMeta, req.encode(), |_| Ok(()))
    }

    /// Readdir.
    pub fn readdir(&self, node: NodeId, dir: &str) -> Result<Vec<Dirent>> {
        self.readdir_nb(node, dir)?.wait()
    }

    /// Nonblocking [`DaemonRing::readdir`] (broadcast listings).
    pub fn readdir_nb(&self, node: NodeId, dir: &str) -> Result<ReplyFuture<Vec<Dirent>>> {
        self.unary_nb(
            node,
            Opcode::ReadDir,
            PathReq::new(dir).encode(),
            Bytes::new(),
            |resp| {
                Ok(ReadDirResp::decode(&resp.body)?
                    .entries
                    .into_iter()
                    .map(|e| Dirent {
                        name: e.name,
                        kind: if e.kind == 0 {
                            FileKind::File
                        } else {
                            FileKind::Directory
                        },
                        size: e.size,
                    })
                    .collect())
            },
        )
    }

    /// Write one batch of chunks; `bulk` is the concatenated data in
    /// op order. Chunk writes are idempotent (same data, same place),
    /// so they retry freely.
    pub fn write_chunks(
        &self,
        node: NodeId,
        path: &str,
        ops: Vec<ChunkOp>,
        bulk: Bytes,
    ) -> Result<()> {
        self.write_chunks_nb(node, path, ops, bulk)?.wait()
    }

    /// Nonblocking [`DaemonRing::write_chunks`] (write fan-out).
    pub fn write_chunks_nb(
        &self,
        node: NodeId,
        path: &str,
        ops: Vec<ChunkOp>,
        bulk: Bytes,
    ) -> Result<ReplyFuture<()>> {
        let req = ChunkBatchReq {
            path: path.to_string(),
            ops,
        };
        self.unary_nb(node, Opcode::WriteChunks, req.encode(), bulk, |_| Ok(()))
    }

    /// Read one batch of chunks; returns per-op lengths and the
    /// concatenated data.
    pub fn read_chunks(
        &self,
        node: NodeId,
        path: &str,
        ops: Vec<ChunkOp>,
    ) -> Result<(Vec<u64>, Bytes)> {
        self.read_chunks_nb(node, path, ops)?.wait()
    }

    /// Nonblocking [`DaemonRing::read_chunks`] (read gather).
    pub fn read_chunks_nb(
        &self,
        node: NodeId,
        path: &str,
        ops: Vec<ChunkOp>,
    ) -> Result<ReplyFuture<(Vec<u64>, Bytes)>> {
        let req = ChunkBatchReq {
            path: path.to_string(),
            ops,
        };
        self.unary_nb(node, Opcode::ReadChunks, req.encode(), Bytes::new(), |resp| {
            let lens = ReadChunksResp::decode(&resp.body)?.lens;
            Ok((lens, resp.bulk))
        })
    }

    /// Remove chunks. Idempotent by construction (removing absent
    /// chunks is a no-op on the daemon), so it retries freely.
    pub fn remove_chunks(&self, node: NodeId, path: &str) -> Result<()> {
        self.remove_chunks_nb(node, path)?.wait()
    }

    /// Nonblocking [`DaemonRing::remove_chunks`] (unlink fan-out).
    pub fn remove_chunks_nb(&self, node: NodeId, path: &str) -> Result<ReplyFuture<()>> {
        self.unary_nb(
            node,
            Opcode::RemoveChunks,
            PathReq::new(path).encode(),
            Bytes::new(),
            |_| Ok(()),
        )
    }

    /// Truncate chunks.
    pub fn truncate_chunks(
        &self,
        node: NodeId,
        path: &str,
        keep_chunk: u64,
        keep_bytes: u64,
    ) -> Result<()> {
        self.truncate_chunks_nb(node, path, keep_chunk, keep_bytes)?
            .wait()
    }

    /// Nonblocking [`DaemonRing::truncate_chunks`] (truncate broadcast).
    pub fn truncate_chunks_nb(
        &self,
        node: NodeId,
        path: &str,
        keep_chunk: u64,
        keep_bytes: u64,
    ) -> Result<ReplyFuture<()>> {
        let req = TruncateChunksReq {
            path: path.to_string(),
            keep_chunk,
            keep_bytes,
        };
        self.unary_nb(node, Opcode::TruncateChunks, req.encode(), Bytes::new(), |_| {
            Ok(())
        })
    }

    /// Paths (and chunk counts) daemon `node` holds chunks for.
    pub fn chunk_inventory(&self, node: NodeId) -> Result<Vec<(String, u64)>> {
        self.chunk_inventory_nb(node)?.wait()
    }

    /// Nonblocking [`DaemonRing::chunk_inventory`] (fsck broadcast).
    pub fn chunk_inventory_nb(&self, node: NodeId) -> Result<ReplyFuture<Vec<(String, u64)>>> {
        self.unary_nb(
            node,
            Opcode::ChunkInventory,
            Bytes::new(),
            Bytes::new(),
            |resp| Ok(ChunkInventoryResp::decode(&resp.body)?.entries),
        )
    }

    /// Daemon stats.
    pub fn daemon_stats(&self, node: NodeId) -> Result<DaemonStatsResp> {
        self.daemon_stats_nb(node)?.wait()
    }

    /// Nonblocking [`DaemonRing::daemon_stats`] (cluster-stats
    /// broadcast).
    pub fn daemon_stats_nb(&self, node: NodeId) -> Result<ReplyFuture<DaemonStatsResp>> {
        self.unary_nb(
            node,
            Opcode::DaemonStats,
            Bytes::new(),
            Bytes::new(),
            |resp| DaemonStatsResp::decode(&resp.body),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkfs_common::DaemonConfig;
    use gkfs_daemon_for_tests::{make_ring, make_ring_of, make_sleepy_ring};
    use gkfs_rpc::testing::{DeadEndpoint, FlakyEndpoint};

    /// Test-only helper building a ring of real in-process daemons.
    mod gkfs_daemon_for_tests {
        use super::*;

        pub fn fake_daemon() -> Arc<dyn Endpoint> {
            // The client crate must not depend on the daemon crate
            // (layering), so tests register a minimal fake daemon:
            // an echo for Ping and canned behaviour for Stat.
            let mut reg = gkfs_rpc::HandlerRegistry::new();
            reg.register_fn(Opcode::Ping, |req| gkfs_rpc::Response::ok(req.body));
            reg.register_fn(Opcode::Stat, |_req| {
                gkfs_rpc::Response::err(GkfsError::NotFound)
            });
            let server = gkfs_rpc::RpcServer::new(reg, 1);
            // Keep server alive by leaking its Arc into the endpoint
            // (endpoint holds the server internally).
            server.endpoint()
        }

        pub fn make_ring(n: usize) -> DaemonRing {
            DaemonRing::new((0..n).map(|_| fake_daemon()).collect())
        }

        /// A ring over caller-supplied endpoints with explicit retry
        /// configuration — for fault-injection tests.
        pub fn make_ring_of(
            endpoints: Vec<Arc<dyn Endpoint>>,
            retry: RetryConfig,
        ) -> DaemonRing {
            DaemonRing::with_retry(endpoints, retry)
        }

        /// A ring whose Ping handlers sleep `delay_ms` — for proving
        /// broadcast overlaps daemons instead of visiting them
        /// serially.
        pub fn make_sleepy_ring(n: usize, delay_ms: u64) -> DaemonRing {
            let mut endpoints: Vec<Arc<dyn Endpoint>> = Vec::new();
            for _ in 0..n {
                let mut reg = gkfs_rpc::HandlerRegistry::new();
                reg.register_fn(Opcode::Ping, move |req| {
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                    gkfs_rpc::Response::ok(req.body)
                });
                let server = gkfs_rpc::RpcServer::new(reg, 1);
                endpoints.push(server.endpoint());
            }
            DaemonRing::new(endpoints)
        }

        #[allow(unused)]
        fn quiet(_: DaemonConfig) {}
    }

    /// Fast deterministic retry knobs for tests.
    fn test_retry(max_attempts: u32) -> RetryConfig {
        RetryConfig {
            max_attempts,
            base_backoff_ms: 1,
            max_backoff_ms: 2,
            breaker_threshold: 0,
            op_deadline_ms: 5_000,
            ..RetryConfig::default()
        }
    }

    #[test]
    fn ping_and_stat_not_found() {
        let ring = make_ring(3);
        assert_eq!(ring.nodes(), 3);
        for n in 0..3 {
            ring.ping(n).unwrap();
        }
        assert!(matches!(ring.stat(1, "/x"), Err(GkfsError::NotFound)));
    }

    #[test]
    fn out_of_range_node_is_rpc_error() {
        let ring = make_ring(2);
        assert!(matches!(ring.ping(5), Err(GkfsError::Rpc(_))));
        assert!(ring.ping_nb(5).is_err());
        assert!(ring.node_health(5).is_err());
        assert_eq!(ring.reconnects(5), 0);
    }

    #[test]
    fn broadcast_hits_every_node_in_order() {
        let ring = make_ring(4);
        let results = ring.broadcast(|n| ring.ping_nb(n));
        assert_eq!(results.len(), 4);
        for r in results {
            r.unwrap();
        }
    }

    #[test]
    fn broadcast_pipelines_across_nodes() {
        // 4 daemons × 60 ms of handler work each: a serial visit costs
        // 240 ms, the submit-all-then-wait-all broadcast ~60 ms.
        let ring = make_sleepy_ring(4, 60);
        let t0 = std::time::Instant::now();
        let results = ring.broadcast(|n| ring.ping_nb(n));
        for r in results {
            r.unwrap();
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(200),
            "broadcast visited daemons serially: {elapsed:?}"
        );
    }

    #[test]
    fn nonblocking_submit_returns_before_completion() {
        let ring = make_sleepy_ring(1, 80);
        let t0 = std::time::Instant::now();
        let fut = ring.ping_nb(0).unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(50),
            "submit must not block on the handler"
        );
        fut.wait().unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(80));
    }

    #[test]
    fn retry_absorbs_flaky_submissions() {
        // Every 2nd submission errors; 4 attempts make each ping
        // reliable. Health counters record the recovery.
        let flaky: Arc<dyn Endpoint> =
            FlakyEndpoint::new(gkfs_daemon_for_tests::fake_daemon(), 2);
        let ring = make_ring_of(vec![flaky], test_retry(4));
        for _ in 0..10 {
            ring.ping(0).unwrap();
        }
        let h = ring.node_health(0).unwrap();
        assert!(h.retries() >= 5, "flaky submits must be retried: {}", h.retries());
        assert!(h.failures() >= 5);
        assert_eq!(h.consecutive_failures(), 0, "successes reset the streak");
    }

    #[test]
    fn disabled_retry_restores_single_attempt_semantics() {
        let flaky: Arc<dyn Endpoint> =
            FlakyEndpoint::new(gkfs_daemon_for_tests::fake_daemon(), 2);
        let ring = make_ring_of(vec![flaky], RetryConfig::disabled());
        let outcomes: Vec<bool> = (0..6).map(|_| ring.ping(0).is_ok()).collect();
        assert_eq!(outcomes, vec![true, false, true, false, true, false]);
        assert_eq!(ring.node_health(0).unwrap().retries(), 0);
    }

    #[test]
    fn retried_create_tolerates_exists_from_lost_reply() {
        // A create whose *reply* is lost was still applied by the
        // daemon; the retried attempt sees Exists and must report
        // success — and the entry must have been created exactly once.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let created = Arc::new(Mutex::new(HashSet::<String>::new()));
        let inserts = Arc::new(AtomicU64::new(0));
        let mut reg = gkfs_rpc::HandlerRegistry::new();
        {
            let created = Arc::clone(&created);
            let inserts = Arc::clone(&inserts);
            reg.register_fn(Opcode::Create, move |req| {
                let path = CreateReq::decode(&req.body).unwrap().path;
                let mut set = created.lock().unwrap();
                if set.contains(&path) {
                    gkfs_rpc::Response::err(GkfsError::Exists)
                } else {
                    set.insert(path);
                    inserts.fetch_add(1, Ordering::Relaxed);
                    gkfs_rpc::Response::ok(bytes::Bytes::new())
                }
            });
        }
        reg.register_fn(Opcode::Ping, |req| gkfs_rpc::Response::ok(req.body));
        let server = gkfs_rpc::RpcServer::new(reg, 1);
        // Reply-path fault every 2nd call; a ping consumes call #1 so
        // the create's first attempt is the one that loses its reply.
        let flaky: Arc<dyn Endpoint> =
            FlakyEndpoint::new_reply_path(server.endpoint(), 2);
        let ring = make_ring_of(vec![flaky], test_retry(4));
        ring.ping(0).unwrap();
        ring.create(0, "/lost-reply", FileKind::File, 0o644, true, 1)
            .unwrap();
        assert_eq!(
            inserts.load(Ordering::Relaxed),
            1,
            "retried create must be exactly-once-observable"
        );
        // A genuine duplicate create (first attempt answered, via a
        // healthy endpoint) still surfaces Exists — tolerance only
        // covers retried attempts.
        let clean = make_ring_of(vec![server.endpoint()], test_retry(4));
        match clean.create(0, "/lost-reply", FileKind::File, 0o644, true, 1) {
            Err(GkfsError::Exists) => {}
            other => panic!("fresh duplicate create must fail: {other:?}"),
        }
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_recovers() {
        let dead: Arc<dyn Endpoint> = Arc::new(DeadEndpoint);
        let cfg = RetryConfig {
            max_attempts: 1,
            breaker_threshold: 3,
            breaker_cooldown_ms: 40,
            op_deadline_ms: 0,
            ..RetryConfig::default()
        };
        let ring = make_ring_of(vec![dead], cfg);
        for _ in 0..3 {
            assert!(matches!(ring.ping(0), Err(GkfsError::Rpc(_))));
        }
        let h = ring.node_health(0).unwrap();
        assert_eq!(h.breaker_state(), BreakerState::Open);
        assert_eq!(h.consecutive_failures(), 3);
        // While open: fail fast with Unavailable, no request sent.
        let before = h.failures();
        match ring.ping(0) {
            Err(GkfsError::Unavailable(_)) => {}
            other => panic!("open breaker must fail fast: {other:?}"),
        }
        assert_eq!(h.failures(), before, "denied request is not a failure");
        // After the cooldown one probe goes through (and fails again
        // here — the endpoint is really dead).
        std::thread::sleep(Duration::from_millis(60));
        assert!(matches!(ring.ping(0), Err(GkfsError::Rpc(_))));
        assert_eq!(h.breaker_state(), BreakerState::Open, "failed probe reopens");
    }

    #[test]
    fn deadline_bounds_aggregate_wait() {
        // Endless retryable failures against a 150 ms operation
        // deadline: the wait must stop near the deadline, not burn
        // max_attempts × timeout.
        let dead: Arc<dyn Endpoint> = Arc::new(DeadEndpoint);
        let cfg = RetryConfig {
            max_attempts: 1_000,
            base_backoff_ms: 5,
            max_backoff_ms: 10,
            breaker_threshold: 0,
            op_deadline_ms: 150,
            ..RetryConfig::default()
        };
        let ring = make_ring_of(vec![dead], cfg);
        let t0 = std::time::Instant::now();
        assert!(ring.ping(0).is_err());
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(400),
            "deadline must bound the retry loop, took {elapsed:?}"
        );
    }
}
