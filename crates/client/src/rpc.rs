//! Typed RPC wrappers: one function per daemon operation.
//!
//! [`DaemonRing`] owns the per-daemon endpoints (the client's "address
//! book"). All placement decisions happen above, in
//! [`crate::client::GekkoClient`]; this layer only encodes, sends,
//! decodes.
//!
//! Every operation comes in two flavors built from one generic
//! helper: the blocking wrapper (`stat`, `write_chunks`, …) and a
//! nonblocking `_nb` sibling returning a typed [`ReplyFuture`] — the
//! client's `margo_iforward`. Hot paths submit to every responsible
//! daemon first and only then wait, so wide striping runs at
//! transport speed with zero per-call thread spawns.

use bytes::Bytes;
use gkfs_common::distributor::NodeId;
use gkfs_common::types::Dirent;
use gkfs_common::{FileKind, GkfsError, Metadata, Result};
use gkfs_rpc::proto::*;
use gkfs_rpc::{Endpoint, Opcode, ReplyHandle, Request, Response};
use std::sync::Arc;
use std::time::Duration;

/// A typed in-flight RPC: the nonblocking half of a [`DaemonRing`]
/// wrapper. [`ReplyFuture::wait`] blocks for the response (bounded by
/// the endpoint's configured timeout), surfaces remote errors, and
/// decodes the typed result.
pub struct ReplyFuture<T> {
    handle: ReplyHandle,
    timeout: Duration,
    decode: Box<dyn FnOnce(Response) -> Result<T> + Send>,
}

impl<T> ReplyFuture<T> {
    /// Block until the reply arrives and decode it.
    pub fn wait(self) -> Result<T> {
        let resp = self.handle.wait(self.timeout)?.into_result()?;
        (self.decode)(resp)
    }
}

/// The set of daemon endpoints, indexed by [`NodeId`].
pub struct DaemonRing {
    endpoints: Vec<Arc<dyn Endpoint>>,
}

impl DaemonRing {
    /// New.
    pub fn new(endpoints: Vec<Arc<dyn Endpoint>>) -> DaemonRing {
        assert!(!endpoints.is_empty(), "need at least one daemon");
        DaemonRing { endpoints }
    }

    /// Nodes.
    pub fn nodes(&self) -> usize {
        self.endpoints.len()
    }

    fn ep(&self, node: NodeId) -> Result<&Arc<dyn Endpoint>> {
        self.endpoints
            .get(node)
            .ok_or_else(|| GkfsError::Rpc(format!("no endpoint for node {node}")))
    }

    /// The one generic nonblocking wrapper every opcode reduces to:
    /// encode is done by the caller (a body plus optional bulk), the
    /// typed decode runs at [`ReplyFuture::wait`].
    fn unary_nb<T>(
        &self,
        node: NodeId,
        op: Opcode,
        body: impl Into<Bytes>,
        bulk: Bytes,
        decode: impl FnOnce(Response) -> Result<T> + Send + 'static,
    ) -> Result<ReplyFuture<T>> {
        let ep = self.ep(node)?;
        let handle = ep.submit(Request::new(op, body).with_bulk(bulk))?;
        Ok(ReplyFuture {
            handle,
            timeout: ep.timeout(),
            decode: Box::new(decode),
        })
    }

    /// Blocking sibling of [`DaemonRing::unary_nb`].
    fn unary<T>(
        &self,
        node: NodeId,
        op: Opcode,
        body: impl Into<Bytes>,
        decode: impl FnOnce(Response) -> Result<T> + Send + 'static,
    ) -> Result<T> {
        self.unary_nb(node, op, body, Bytes::new(), decode)?.wait()
    }

    /// Submit `f(node)` to every node, then wait for all replies in
    /// node order — pipelined fan-out (`margo_iforward` to the whole
    /// ring, then `margo_wait` on each handle) with zero thread
    /// spawns. Used for broadcast operations (readdir, remove,
    /// truncate, stats, fsck inventory).
    pub fn broadcast<T, F>(&self, f: F) -> Vec<Result<T>>
    where
        F: Fn(NodeId) -> Result<ReplyFuture<T>>,
    {
        let inflight: Vec<Result<ReplyFuture<T>>> = (0..self.nodes()).map(f).collect();
        inflight
            .into_iter()
            .map(|fut| fut.and_then(|fut| fut.wait()))
            .collect()
    }

    /// Liveness check used during deployment.
    pub fn ping(&self, node: NodeId) -> Result<()> {
        self.ping_nb(node)?.wait()
    }

    /// Nonblocking [`DaemonRing::ping`].
    pub fn ping_nb(&self, node: NodeId) -> Result<ReplyFuture<()>> {
        self.unary_nb(node, Opcode::Ping, Bytes::new(), Bytes::new(), |_| Ok(()))
    }

    /// Create.
    pub fn create(
        &self,
        node: NodeId,
        path: &str,
        kind: FileKind,
        mode: u32,
        exclusive: bool,
        now_ns: u64,
    ) -> Result<()> {
        let req = CreateReq {
            path: path.to_string(),
            kind: match kind {
                FileKind::File => 0,
                FileKind::Directory => 1,
            },
            mode,
            exclusive,
            now_ns,
        };
        self.unary(node, Opcode::Create, req.encode(), |_| Ok(()))
    }

    /// Stat.
    pub fn stat(&self, node: NodeId, path: &str) -> Result<Metadata> {
        self.unary(node, Opcode::Stat, PathReq::new(path).encode(), |resp| {
            Metadata::decode(&resp.body)
        })
    }

    /// Remove the metadata entry; returns the removed entry's kind.
    pub fn remove_meta(&self, node: NodeId, path: &str) -> Result<FileKind> {
        self.unary(
            node,
            Opcode::RemoveMeta,
            PathReq::new(path).encode(),
            |resp| match RemoveMetaResp::decode(&resp.body)?.kind {
                0 => Ok(FileKind::File),
                _ => Ok(FileKind::Directory),
            },
        )
    }

    /// Update size.
    pub fn update_size(&self, node: NodeId, path: &str, size: u64, mtime_ns: u64) -> Result<()> {
        self.update_size_nb(node, path, size, mtime_ns)?.wait()
    }

    /// Nonblocking [`DaemonRing::update_size`] (flush fan-out).
    pub fn update_size_nb(
        &self,
        node: NodeId,
        path: &str,
        size: u64,
        mtime_ns: u64,
    ) -> Result<ReplyFuture<()>> {
        let req = UpdateSizeReq {
            path: path.to_string(),
            size,
            mtime_ns,
        };
        self.unary_nb(node, Opcode::UpdateSize, req.encode(), Bytes::new(), |_| {
            Ok(())
        })
    }

    /// Truncate meta.
    pub fn truncate_meta(&self, node: NodeId, path: &str, new_size: u64, mtime_ns: u64) -> Result<()> {
        let req = TruncateMetaReq {
            path: path.to_string(),
            new_size,
            mtime_ns,
        };
        self.unary(node, Opcode::TruncateMeta, req.encode(), |_| Ok(()))
    }

    /// Readdir.
    pub fn readdir(&self, node: NodeId, dir: &str) -> Result<Vec<Dirent>> {
        self.readdir_nb(node, dir)?.wait()
    }

    /// Nonblocking [`DaemonRing::readdir`] (broadcast listings).
    pub fn readdir_nb(&self, node: NodeId, dir: &str) -> Result<ReplyFuture<Vec<Dirent>>> {
        self.unary_nb(
            node,
            Opcode::ReadDir,
            PathReq::new(dir).encode(),
            Bytes::new(),
            |resp| {
                Ok(ReadDirResp::decode(&resp.body)?
                    .entries
                    .into_iter()
                    .map(|e| Dirent {
                        name: e.name,
                        kind: if e.kind == 0 {
                            FileKind::File
                        } else {
                            FileKind::Directory
                        },
                        size: e.size,
                    })
                    .collect())
            },
        )
    }

    /// Write one batch of chunks; `bulk` is the concatenated data in
    /// op order.
    pub fn write_chunks(
        &self,
        node: NodeId,
        path: &str,
        ops: Vec<ChunkOp>,
        bulk: Bytes,
    ) -> Result<()> {
        self.write_chunks_nb(node, path, ops, bulk)?.wait()
    }

    /// Nonblocking [`DaemonRing::write_chunks`] (write fan-out).
    pub fn write_chunks_nb(
        &self,
        node: NodeId,
        path: &str,
        ops: Vec<ChunkOp>,
        bulk: Bytes,
    ) -> Result<ReplyFuture<()>> {
        let req = ChunkBatchReq {
            path: path.to_string(),
            ops,
        };
        self.unary_nb(node, Opcode::WriteChunks, req.encode(), bulk, |_| Ok(()))
    }

    /// Read one batch of chunks; returns per-op lengths and the
    /// concatenated data.
    pub fn read_chunks(
        &self,
        node: NodeId,
        path: &str,
        ops: Vec<ChunkOp>,
    ) -> Result<(Vec<u64>, Bytes)> {
        self.read_chunks_nb(node, path, ops)?.wait()
    }

    /// Nonblocking [`DaemonRing::read_chunks`] (read gather).
    pub fn read_chunks_nb(
        &self,
        node: NodeId,
        path: &str,
        ops: Vec<ChunkOp>,
    ) -> Result<ReplyFuture<(Vec<u64>, Bytes)>> {
        let req = ChunkBatchReq {
            path: path.to_string(),
            ops,
        };
        self.unary_nb(node, Opcode::ReadChunks, req.encode(), Bytes::new(), |resp| {
            let lens = ReadChunksResp::decode(&resp.body)?.lens;
            Ok((lens, resp.bulk))
        })
    }

    /// Remove chunks.
    pub fn remove_chunks(&self, node: NodeId, path: &str) -> Result<()> {
        self.remove_chunks_nb(node, path)?.wait()
    }

    /// Nonblocking [`DaemonRing::remove_chunks`] (unlink fan-out).
    pub fn remove_chunks_nb(&self, node: NodeId, path: &str) -> Result<ReplyFuture<()>> {
        self.unary_nb(
            node,
            Opcode::RemoveChunks,
            PathReq::new(path).encode(),
            Bytes::new(),
            |_| Ok(()),
        )
    }

    /// Truncate chunks.
    pub fn truncate_chunks(
        &self,
        node: NodeId,
        path: &str,
        keep_chunk: u64,
        keep_bytes: u64,
    ) -> Result<()> {
        self.truncate_chunks_nb(node, path, keep_chunk, keep_bytes)?
            .wait()
    }

    /// Nonblocking [`DaemonRing::truncate_chunks`] (truncate broadcast).
    pub fn truncate_chunks_nb(
        &self,
        node: NodeId,
        path: &str,
        keep_chunk: u64,
        keep_bytes: u64,
    ) -> Result<ReplyFuture<()>> {
        let req = TruncateChunksReq {
            path: path.to_string(),
            keep_chunk,
            keep_bytes,
        };
        self.unary_nb(node, Opcode::TruncateChunks, req.encode(), Bytes::new(), |_| {
            Ok(())
        })
    }

    /// Paths (and chunk counts) daemon `node` holds chunks for.
    pub fn chunk_inventory(&self, node: NodeId) -> Result<Vec<(String, u64)>> {
        self.chunk_inventory_nb(node)?.wait()
    }

    /// Nonblocking [`DaemonRing::chunk_inventory`] (fsck broadcast).
    pub fn chunk_inventory_nb(&self, node: NodeId) -> Result<ReplyFuture<Vec<(String, u64)>>> {
        self.unary_nb(
            node,
            Opcode::ChunkInventory,
            Bytes::new(),
            Bytes::new(),
            |resp| Ok(ChunkInventoryResp::decode(&resp.body)?.entries),
        )
    }

    /// Daemon stats.
    pub fn daemon_stats(&self, node: NodeId) -> Result<DaemonStatsResp> {
        self.daemon_stats_nb(node)?.wait()
    }

    /// Nonblocking [`DaemonRing::daemon_stats`] (cluster-stats
    /// broadcast).
    pub fn daemon_stats_nb(&self, node: NodeId) -> Result<ReplyFuture<DaemonStatsResp>> {
        self.unary_nb(
            node,
            Opcode::DaemonStats,
            Bytes::new(),
            Bytes::new(),
            |resp| DaemonStatsResp::decode(&resp.body),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkfs_common::DaemonConfig;
    use gkfs_daemon_for_tests::{make_ring, make_sleepy_ring};

    /// Test-only helper building a ring of real in-process daemons.
    mod gkfs_daemon_for_tests {
        use super::*;

        pub fn make_ring(n: usize) -> DaemonRing {
            // The client crate must not depend on the daemon crate
            // (layering), so tests register a minimal fake daemon:
            // an echo for Ping and canned behaviour for Stat.
            let mut endpoints: Vec<Arc<dyn Endpoint>> = Vec::new();
            for _ in 0..n {
                let mut reg = gkfs_rpc::HandlerRegistry::new();
                reg.register_fn(Opcode::Ping, |req| gkfs_rpc::Response::ok(req.body));
                reg.register_fn(Opcode::Stat, |_req| {
                    gkfs_rpc::Response::err(GkfsError::NotFound)
                });
                let server = gkfs_rpc::RpcServer::new(reg, 1);
                endpoints.push(server.endpoint());
                // Keep server alive by leaking its Arc into the endpoint
                // (endpoint holds the server internally).
            }
            DaemonRing::new(endpoints)
        }

        /// A ring whose Ping handlers sleep `delay_ms` — for proving
        /// broadcast overlaps daemons instead of visiting them
        /// serially.
        pub fn make_sleepy_ring(n: usize, delay_ms: u64) -> DaemonRing {
            let mut endpoints: Vec<Arc<dyn Endpoint>> = Vec::new();
            for _ in 0..n {
                let mut reg = gkfs_rpc::HandlerRegistry::new();
                reg.register_fn(Opcode::Ping, move |req| {
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                    gkfs_rpc::Response::ok(req.body)
                });
                let server = gkfs_rpc::RpcServer::new(reg, 1);
                endpoints.push(server.endpoint());
            }
            DaemonRing::new(endpoints)
        }

        #[allow(unused)]
        fn quiet(_: DaemonConfig) {}
    }

    #[test]
    fn ping_and_stat_not_found() {
        let ring = make_ring(3);
        assert_eq!(ring.nodes(), 3);
        for n in 0..3 {
            ring.ping(n).unwrap();
        }
        assert!(matches!(ring.stat(1, "/x"), Err(GkfsError::NotFound)));
    }

    #[test]
    fn out_of_range_node_is_rpc_error() {
        let ring = make_ring(2);
        assert!(matches!(ring.ping(5), Err(GkfsError::Rpc(_))));
        assert!(ring.ping_nb(5).is_err());
    }

    #[test]
    fn broadcast_hits_every_node_in_order() {
        let ring = make_ring(4);
        let results = ring.broadcast(|n| ring.ping_nb(n));
        assert_eq!(results.len(), 4);
        for r in results {
            r.unwrap();
        }
    }

    #[test]
    fn broadcast_pipelines_across_nodes() {
        // 4 daemons × 60 ms of handler work each: a serial visit costs
        // 240 ms, the submit-all-then-wait-all broadcast ~60 ms.
        let ring = make_sleepy_ring(4, 60);
        let t0 = std::time::Instant::now();
        let results = ring.broadcast(|n| ring.ping_nb(n));
        for r in results {
            r.unwrap();
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(200),
            "broadcast visited daemons serially: {elapsed:?}"
        );
    }

    #[test]
    fn nonblocking_submit_returns_before_completion() {
        let ring = make_sleepy_ring(1, 80);
        let t0 = std::time::Instant::now();
        let fut = ring.ping_nb(0).unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(50),
            "submit must not block on the handler"
        );
        fut.wait().unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(80));
    }
}
