//! Typed RPC wrappers: one function per daemon operation.
//!
//! [`DaemonRing`] owns the per-daemon endpoints (the client's "address
//! book"). All placement decisions happen above, in
//! [`crate::client::GekkoClient`]; this layer only encodes, sends,
//! decodes.

use bytes::Bytes;
use gkfs_common::distributor::NodeId;
use gkfs_common::types::Dirent;
use gkfs_common::{FileKind, GkfsError, Metadata, Result};
use gkfs_rpc::proto::*;
use gkfs_rpc::{Endpoint, Opcode, Request};
use std::sync::Arc;

/// The set of daemon endpoints, indexed by [`NodeId`].
pub struct DaemonRing {
    endpoints: Vec<Arc<dyn Endpoint>>,
}

impl DaemonRing {
    /// New.
    pub fn new(endpoints: Vec<Arc<dyn Endpoint>>) -> DaemonRing {
        assert!(!endpoints.is_empty(), "need at least one daemon");
        DaemonRing { endpoints }
    }

    /// Nodes.
    pub fn nodes(&self) -> usize {
        self.endpoints.len()
    }

    fn ep(&self, node: NodeId) -> Result<&Arc<dyn Endpoint>> {
        self.endpoints
            .get(node)
            .ok_or_else(|| GkfsError::Rpc(format!("no endpoint for node {node}")))
    }

    /// Liveness check used during deployment.
    pub fn ping(&self, node: NodeId) -> Result<()> {
        self.ep(node)?
            .call(Request::new(Opcode::Ping, Bytes::new()))?
            .into_result()
            .map(|_| ())
    }

    /// Create.
    pub fn create(
        &self,
        node: NodeId,
        path: &str,
        kind: FileKind,
        mode: u32,
        exclusive: bool,
        now_ns: u64,
    ) -> Result<()> {
        let req = CreateReq {
            path: path.to_string(),
            kind: match kind {
                FileKind::File => 0,
                FileKind::Directory => 1,
            },
            mode,
            exclusive,
            now_ns,
        };
        self.ep(node)?
            .call(Request::new(Opcode::Create, req.encode()))?
            .into_result()
            .map(|_| ())
    }

    /// Stat.
    pub fn stat(&self, node: NodeId, path: &str) -> Result<Metadata> {
        let resp = self
            .ep(node)?
            .call(Request::new(Opcode::Stat, PathReq::new(path).encode()))?
            .into_result()?;
        Metadata::decode(&resp.body)
    }

    /// Remove the metadata entry; returns the removed entry's kind.
    pub fn remove_meta(&self, node: NodeId, path: &str) -> Result<FileKind> {
        let resp = self
            .ep(node)?
            .call(Request::new(
                Opcode::RemoveMeta,
                PathReq::new(path).encode(),
            ))?
            .into_result()?;
        match RemoveMetaResp::decode(&resp.body)?.kind {
            0 => Ok(FileKind::File),
            _ => Ok(FileKind::Directory),
        }
    }

    /// Update size.
    pub fn update_size(&self, node: NodeId, path: &str, size: u64, mtime_ns: u64) -> Result<()> {
        let req = UpdateSizeReq {
            path: path.to_string(),
            size,
            mtime_ns,
        };
        self.ep(node)?
            .call(Request::new(Opcode::UpdateSize, req.encode()))?
            .into_result()
            .map(|_| ())
    }

    /// Truncate meta.
    pub fn truncate_meta(&self, node: NodeId, path: &str, new_size: u64, mtime_ns: u64) -> Result<()> {
        let req = TruncateMetaReq {
            path: path.to_string(),
            new_size,
            mtime_ns,
        };
        self.ep(node)?
            .call(Request::new(Opcode::TruncateMeta, req.encode()))?
            .into_result()
            .map(|_| ())
    }

    /// Readdir.
    pub fn readdir(&self, node: NodeId, dir: &str) -> Result<Vec<Dirent>> {
        let resp = self
            .ep(node)?
            .call(Request::new(Opcode::ReadDir, PathReq::new(dir).encode()))?
            .into_result()?;
        Ok(ReadDirResp::decode(&resp.body)?
            .entries
            .into_iter()
            .map(|e| Dirent {
                name: e.name,
                kind: if e.kind == 0 {
                    FileKind::File
                } else {
                    FileKind::Directory
                },
                size: e.size,
            })
            .collect())
    }

    /// Write one batch of chunks; `bulk` is the concatenated data in
    /// op order.
    pub fn write_chunks(
        &self,
        node: NodeId,
        path: &str,
        ops: Vec<ChunkOp>,
        bulk: Bytes,
    ) -> Result<()> {
        let req = ChunkBatchReq {
            path: path.to_string(),
            ops,
        };
        self.ep(node)?
            .call(Request::new(Opcode::WriteChunks, req.encode()).with_bulk(bulk))?
            .into_result()
            .map(|_| ())
    }

    /// Read one batch of chunks; returns per-op lengths and the
    /// concatenated data.
    pub fn read_chunks(
        &self,
        node: NodeId,
        path: &str,
        ops: Vec<ChunkOp>,
    ) -> Result<(Vec<u64>, Bytes)> {
        let req = ChunkBatchReq {
            path: path.to_string(),
            ops,
        };
        let resp = self
            .ep(node)?
            .call(Request::new(Opcode::ReadChunks, req.encode()))?
            .into_result()?;
        let lens = ReadChunksResp::decode(&resp.body)?.lens;
        Ok((lens, resp.bulk))
    }

    /// Remove chunks.
    pub fn remove_chunks(&self, node: NodeId, path: &str) -> Result<()> {
        self.ep(node)?
            .call(Request::new(
                Opcode::RemoveChunks,
                PathReq::new(path).encode(),
            ))?
            .into_result()
            .map(|_| ())
    }

    /// Truncate chunks.
    pub fn truncate_chunks(
        &self,
        node: NodeId,
        path: &str,
        keep_chunk: u64,
        keep_bytes: u64,
    ) -> Result<()> {
        let req = TruncateChunksReq {
            path: path.to_string(),
            keep_chunk,
            keep_bytes,
        };
        self.ep(node)?
            .call(Request::new(Opcode::TruncateChunks, req.encode()))?
            .into_result()
            .map(|_| ())
    }

    /// Paths (and chunk counts) daemon `node` holds chunks for.
    pub fn chunk_inventory(&self, node: NodeId) -> Result<Vec<(String, u64)>> {
        let resp = self
            .ep(node)?
            .call(Request::new(Opcode::ChunkInventory, Bytes::new()))?
            .into_result()?;
        Ok(ChunkInventoryResp::decode(&resp.body)?.entries)
    }

    /// Daemon stats.
    pub fn daemon_stats(&self, node: NodeId) -> Result<DaemonStatsResp> {
        let resp = self
            .ep(node)?
            .call(Request::new(Opcode::DaemonStats, Bytes::new()))?
            .into_result()?;
        DaemonStatsResp::decode(&resp.body)
    }

    /// Run `f(node)` for every node in parallel and collect results in
    /// node order. Used for broadcast operations (readdir, remove,
    /// truncate) and parallel chunk fan-out.
    pub fn broadcast<T, F>(&self, f: F) -> Vec<Result<T>>
    where
        T: Send,
        F: Fn(NodeId) -> Result<T> + Sync,
    {
        if self.nodes() == 1 {
            return vec![f(0)];
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.nodes())
                .map(|n| {
                    let f = &f;
                    s.spawn(move || f(n))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkfs_common::DaemonConfig;
    use gkfs_daemon_for_tests::make_ring;

    /// Test-only helper building a ring of real in-process daemons.
    mod gkfs_daemon_for_tests {
        use super::*;

        pub fn make_ring(n: usize) -> DaemonRing {
            // The client crate must not depend on the daemon crate
            // (layering), so tests register a minimal fake daemon:
            // an echo for Ping and canned behaviour for Stat.
            let mut endpoints: Vec<Arc<dyn Endpoint>> = Vec::new();
            for _ in 0..n {
                let mut reg = gkfs_rpc::HandlerRegistry::new();
                reg.register_fn(Opcode::Ping, |req| gkfs_rpc::Response::ok(req.body));
                reg.register_fn(Opcode::Stat, |_req| {
                    gkfs_rpc::Response::err(GkfsError::NotFound)
                });
                let server = gkfs_rpc::RpcServer::new(reg, 1);
                endpoints.push(server.endpoint());
                // Keep server alive by leaking its Arc into the endpoint
                // (endpoint holds the server internally).
            }
            DaemonRing::new(endpoints)
        }

        #[allow(unused)]
        fn quiet(_: DaemonConfig) {}
    }

    #[test]
    fn ping_and_stat_not_found() {
        let ring = make_ring(3);
        assert_eq!(ring.nodes(), 3);
        for n in 0..3 {
            ring.ping(n).unwrap();
        }
        assert!(matches!(ring.stat(1, "/x"), Err(GkfsError::NotFound)));
    }

    #[test]
    fn out_of_range_node_is_rpc_error() {
        let ring = make_ring(2);
        assert!(matches!(ring.ping(5), Err(GkfsError::Rpc(_))));
    }

    #[test]
    fn broadcast_hits_every_node_in_order() {
        let ring = make_ring(4);
        let results = ring.broadcast(|n| Ok::<usize, GkfsError>(n * 10));
        let vals: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, vec![0, 10, 20, 30]);
    }
}
