//! # gkfs-client — the GekkoFS client library
//!
//! Paper §III-B-a: *"The client consists of three components: 1) An
//! interception interface that catches relevant calls to GekkoFS and
//! forwards unrelated calls to the node-local file system; 2) a file
//! map that manages the file descriptors of open files and directories,
//! independently of the kernel; and 3) an RPC-based communication layer
//! that forwards file system requests to local/remote GekkoFS
//! daemons."*
//!
//! This crate is components (2) and (3) plus all routing logic:
//!
//! * [`filemap`] — the kernel-independent descriptor table.
//! * [`rpc`] — typed wrappers over the RPC endpoints, one per opcode.
//! * [`size_cache`] — the client-side write-size coalescing cache the
//!   paper adds in §IV-B to fix shared-file write throughput.
//! * [`writeback`] — the per-handle write-back buffer coalescing small
//!   sequential writes into chunk-aligned batches.
//! * [`client`] — [`client::GekkoClient`]: path normalization, the
//!   distributor, chunking, parallel fan-out of reads/writes, and the
//!   POSIX-relaxed operation set (no rename/links/locks, eventually
//!   consistent `readdir`, strong consistency for single-file ops).
//!   I/O goes through explicit open handles
//!   ([`client::GekkoClient::open_handle`] → [`client::FileHandle`]);
//!   the path-based `write_at_path`/`read_at_path` surface remains as
//!   deprecated shims over an internal anonymous handle.
//!
//! The interception interface itself — component (1), an `LD_PRELOAD`
//! shim in C++ GekkoFS — is provided as a C ABI in the `gkfs-posix`
//! crate; everything behind it lives here.

#![warn(missing_docs)]

pub mod client;
pub mod filemap;
pub mod rpc;
pub mod size_cache;
pub mod stat_cache;
pub mod writeback;

pub use client::{ClientStats, FileHandle, FsckReport, GekkoClient};
pub use filemap::{FileMap, OpenFile};
pub use rpc::{DaemonRing, NodeHealth, NodeHealthSnapshot, ReplyFuture};
