//! Manual measurement of the retry layer's fault-free fast-path tax,
//! backing the EXPERIMENTS.md "retry fast-path overhead" entry:
//!
//! ```sh
//! cargo test -p gkfs-client --release --test retry_overhead -- --ignored --nocapture
//! ```
//!
//! Compares `DaemonRing::ping` with retries disabled (single attempt,
//! no breaker, no deadline) against the default armed policy over an
//! in-process echo server — the cheapest RPC the stack can do, i.e.
//! the *worst case* for relative overhead. No fault ever fires; the
//! measured difference is pure retry-layer bookkeeping (breaker load,
//! deadline arming, health counters).

use gkfs_client::DaemonRing;
use gkfs_common::config::RetryConfig;
use gkfs_rpc::{Endpoint, HandlerRegistry, Opcode, Response, RpcServer};
use std::sync::Arc;
use std::time::Instant;

fn echo_ring(retry: RetryConfig) -> DaemonRing {
    let mut reg = HandlerRegistry::new();
    reg.register_fn(Opcode::Ping, |req| Response::ok(req.body));
    let server = RpcServer::new(reg, 1);
    DaemonRing::with_retry(vec![server.endpoint() as Arc<dyn Endpoint>], retry)
}

fn measure(ring: &DaemonRing, iters: u64) -> f64 {
    // Warm-up.
    for _ in 0..iters / 10 {
        ring.ping(0).unwrap();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        ring.ping(0).unwrap();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

#[test]
#[ignore = "manual measurement; run release with --nocapture"]
fn measure_retry_fastpath_overhead() {
    const ITERS: u64 = 200_000;
    let disabled = echo_ring(RetryConfig::disabled());
    let armed = echo_ring(RetryConfig::default());
    // Interleave rounds so frequency scaling and noise hit both arms.
    let mut d_best = f64::MAX;
    let mut a_best = f64::MAX;
    for _ in 0..5 {
        d_best = d_best.min(measure(&disabled, ITERS));
        a_best = a_best.min(measure(&armed, ITERS));
    }
    let overhead = (a_best - d_best) / d_best * 100.0;
    println!(
        "retry fast-path: disabled {d_best:.1} ns/op, default {a_best:.1} ns/op, \
         overhead {overhead:+.2} %"
    );
}
