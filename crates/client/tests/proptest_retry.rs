//! Property tests for the retry layer, covering the two guarantees
//! the fault model promises (DESIGN.md "Fault model"):
//!
//! 1. **Deadline bound** — no operation exceeds its [`Deadline`] by
//!    more than one endpoint wait: the retry loop clamps every reply
//!    wait and every backoff sleep to the remaining budget, so the
//!    worst case is entering the final wait just before expiry.
//! 2. **Exactly-once observability** — a retried idempotent-by-
//!    tolerance op (create / remove_meta) whose reply was lost is
//!    applied exactly once on the daemon, reports success to the
//!    caller, and a genuine duplicate from another client still fails.
//!
//! Each property is a plain helper returning `Result<(), String>`.
//! `proptest!` drives it with random parameters; a deterministic
//! fixed-grid `#[test]` pins reproducible cases so the properties are
//! exercised even where the full proptest crate is unavailable.

use gkfs_client::DaemonRing;
use gkfs_common::config::RetryConfig;
use gkfs_common::{FileKind, GkfsError};
use gkfs_rpc::proto::{CreateReq, PathReq, RemoveMetaResp};
use gkfs_rpc::testing::FlakyEndpoint;
use gkfs_rpc::{
    ChaosConfig, ChaosEndpoint, Endpoint, EndpointOptions, HandlerRegistry, Opcode, Response,
    RpcServer,
};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Scheduling slack added on top of the structural bound — generous so
/// a loaded CI machine cannot flake the property.
const SLACK: Duration = Duration::from_millis(150);

/// Property 1: against an endpoint that never replies (every request
/// deterministically dropped), an op with `max_attempts` retries and an
/// op deadline must resolve within `deadline + one endpoint wait`.
fn check_deadline_bound(
    deadline_ms: u64,
    timeout_ms: u64,
    max_attempts: u32,
) -> Result<(), String> {
    let mut reg = HandlerRegistry::new();
    reg.register_fn(Opcode::Ping, |req| Response::ok(req.body));
    let server = RpcServer::new(reg, 1);
    let ep = server.endpoint_with(
        EndpointOptions::new().with_timeout(Duration::from_millis(timeout_ms)),
    );
    // drop_request = 1.0 → a black hole: the handler never sees the
    // request, every wait times out.
    let black_hole = ChaosEndpoint::new(
        ep,
        ChaosConfig {
            drop_request: 1.0,
            ..ChaosConfig::quiet(0xD0_0D)
        },
    );
    let ring = DaemonRing::with_retry(
        vec![black_hole as Arc<dyn Endpoint>],
        RetryConfig {
            max_attempts,
            base_backoff_ms: 1,
            max_backoff_ms: 8,
            breaker_threshold: 0,
            op_deadline_ms: deadline_ms,
            ..RetryConfig::default()
        },
    );
    let t0 = Instant::now();
    let result = ring.ping(0);
    let elapsed = t0.elapsed();
    if result.is_ok() {
        return Err("ping through a black hole cannot succeed".into());
    }
    let bound = Duration::from_millis(deadline_ms + timeout_ms) + SLACK;
    if elapsed > bound {
        return Err(format!(
            "op exceeded its deadline by more than one wait: elapsed {elapsed:?}, \
             deadline {deadline_ms} ms, endpoint wait {timeout_ms} ms, attempts {max_attempts}"
        ));
    }
    Ok(())
}

/// A minimal daemon that *counts applications*: Create inserts into a
/// set (Exists on duplicate), RemoveMeta removes (NotFound on miss).
struct CountingDaemon {
    server: Arc<RpcServer>,
    inserts: Arc<AtomicU64>,
    removes: Arc<AtomicU64>,
}

fn counting_daemon() -> CountingDaemon {
    let entries = Arc::new(Mutex::new(HashSet::<String>::new()));
    let inserts = Arc::new(AtomicU64::new(0));
    let removes = Arc::new(AtomicU64::new(0));
    let mut reg = HandlerRegistry::new();
    reg.register_fn(Opcode::Ping, |req| Response::ok(req.body));
    {
        let entries = Arc::clone(&entries);
        let inserts = Arc::clone(&inserts);
        reg.register_fn(Opcode::Create, move |req| {
            let path = match CreateReq::decode(&req.body) {
                Ok(r) => r.path,
                Err(e) => return Response::err(e),
            };
            let mut set = entries.lock().unwrap();
            if set.contains(&path) {
                Response::err(GkfsError::Exists)
            } else {
                set.insert(path);
                inserts.fetch_add(1, Ordering::Relaxed);
                Response::ok(bytes::Bytes::new())
            }
        });
    }
    {
        let entries = Arc::clone(&entries);
        let removes = Arc::clone(&removes);
        reg.register_fn(Opcode::RemoveMeta, move |req| {
            let path = match PathReq::decode(&req.body) {
                Ok(r) => r.path,
                Err(e) => return Response::err(e),
            };
            let mut set = entries.lock().unwrap();
            if set.remove(&path) {
                removes.fetch_add(1, Ordering::Relaxed);
                Response::ok(bytes::Bytes::from(RemoveMetaResp { kind: 0 }.encode()))
            } else {
                Response::err(GkfsError::NotFound)
            }
        });
    }
    CountingDaemon {
        server: RpcServer::new(reg, 1),
        inserts,
        removes,
    }
}

fn fast_retry(max_attempts: u32) -> RetryConfig {
    RetryConfig {
        max_attempts,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        breaker_threshold: 0,
        op_deadline_ms: 5_000,
        ..RetryConfig::default()
    }
}

/// Property 2: under reply-path faults (the daemon applies the op but
/// the reply is lost every `fail_every`-th call), every create and
/// every remove still reports success, is applied exactly once, and a
/// genuine duplicate from a clean client fails.
fn check_exactly_once(fail_every: u64, n_ops: usize) -> Result<(), String> {
    let daemon = counting_daemon();
    let flaky: Arc<dyn Endpoint> =
        FlakyEndpoint::new_reply_path(daemon.server.endpoint(), fail_every);
    let ring = DaemonRing::with_retry(vec![flaky], fast_retry(4));
    let clean = DaemonRing::with_retry(vec![daemon.server.endpoint()], fast_retry(1));

    for i in 0..n_ops {
        ring.create(0, &format!("/p{i}"), FileKind::File, 0o644, true, 1)
            .map_err(|e| format!("create /p{i}: {e}"))?;
    }
    let inserts = daemon.inserts.load(Ordering::Relaxed);
    if inserts != n_ops as u64 {
        return Err(format!(
            "creates not exactly-once: {n_ops} ops, {inserts} applications"
        ));
    }
    // A genuine duplicate — first attempt answered, clean endpoint —
    // must still surface Exists: tolerance only covers retried
    // attempts of the same logical op.
    match clean.create(0, "/p0", FileKind::File, 0o644, true, 1) {
        Err(GkfsError::Exists) => {}
        other => return Err(format!("genuine duplicate create must fail: {other:?}")),
    }

    for i in 0..n_ops {
        ring.remove_meta(0, &format!("/p{i}"))
            .map_err(|e| format!("remove /p{i}: {e}"))?;
    }
    let removes = daemon.removes.load(Ordering::Relaxed);
    if removes != n_ops as u64 {
        return Err(format!(
            "removes not exactly-once: {n_ops} ops, {removes} applications"
        ));
    }
    match clean.remove_meta(0, "/p0") {
        Err(GkfsError::NotFound) => {}
        other => return Err(format!("removing a removed entry must fail: {other:?}")),
    }
    Ok(())
}

proptest! {
    fn prop_no_op_exceeds_deadline_by_more_than_one_wait(
        deadline_ms in 20u64..60,
        timeout_ms in 5u64..25,
        attempts in 1u32..6,
    ) {
        let r = check_deadline_bound(deadline_ms, timeout_ms, attempts);
        prop_assert!(r.is_ok(), "{}", r.err().unwrap_or_default());
    }

    fn prop_retried_idempotent_ops_are_exactly_once(
        fail_every in 2u64..6,
        n_ops in 4usize..16,
    ) {
        let r = check_exactly_once(fail_every, n_ops);
        prop_assert!(r.is_ok(), "{}", r.err().unwrap_or_default());
    }
}

#[test]
fn deadline_bound_holds_on_fixed_grid() {
    for &(deadline_ms, timeout_ms, attempts) in &[
        (20u64, 5u64, 1u32),
        (30, 7, 6),
        (40, 10, 3),
        (50, 20, 2),
        (60, 25, 5),
    ] {
        check_deadline_bound(deadline_ms, timeout_ms, attempts).unwrap();
    }
}

#[test]
fn exactly_once_holds_on_fixed_grid() {
    for fail_every in 2..6 {
        check_exactly_once(fail_every, 12).unwrap();
    }
}
