//! Property-based tests: random operation sequences against a
//! reference model.
//!
//! The model is a plain in-memory map of path → bytes; GekkoFS (real
//! daemons, real chunking, real RPC) must agree with it on every
//! observable after every step. This is the strongest correctness net
//! over the whole stack: placement, chunk math, size accounting, and
//! truncate interactions all funnel through here.

use gekkofs::{Cluster, ClusterConfig, GkfsError, OpenFlags};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write { file: u8, offset: u16, len: u8, seed: u8 },
    Read { file: u8, offset: u16, len: u16 },
    Truncate { file: u8, size: u16 },
    Remove(u8),
    Stat(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6).prop_map(Op::Create),
        ((0u8..6), any::<u16>(), any::<u8>(), any::<u8>())
            .prop_map(|(file, offset, len, seed)| Op::Write { file, offset: offset % 20_000, len, seed }),
        ((0u8..6), any::<u16>(), any::<u16>())
            .prop_map(|(file, offset, len)| Op::Read { file, offset: offset % 25_000, len: len % 25_000 }),
        ((0u8..6), any::<u16>()).prop_map(|(file, size)| Op::Truncate { file, size: size % 25_000 }),
        (0u8..6).prop_map(Op::Remove),
        (0u8..6).prop_map(Op::Stat),
    ]
}

fn path(file: u8) -> String {
    format!("/prop/file-{file}")
}

fn pattern(seed: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| (seed as usize).wrapping_add(i.wrapping_mul(31)) as u8).collect()
}

/// Reference model: path → contents.
#[derive(Default)]
struct Model {
    files: HashMap<String, Vec<u8>>,
}

impl Model {
    fn create(&mut self, p: &str) -> bool {
        if self.files.contains_key(p) {
            false
        } else {
            self.files.insert(p.to_string(), Vec::new());
            true
        }
    }
    fn write(&mut self, p: &str, offset: usize, data: &[u8]) -> bool {
        match self.files.get_mut(p) {
            None => false,
            Some(contents) => {
                if data.is_empty() {
                    return true; // POSIX: zero-length writes are no-ops
                }
                let end = offset + data.len();
                if contents.len() < end {
                    contents.resize(end, 0);
                }
                contents[offset..end].copy_from_slice(data);
                true
            }
        }
    }
    fn read(&self, p: &str, offset: usize, len: usize) -> Option<Vec<u8>> {
        self.files.get(p).map(|c| {
            let start = offset.min(c.len());
            let end = (offset + len).min(c.len());
            c[start..end].to_vec()
        })
    }
    fn truncate(&mut self, p: &str, size: usize) -> bool {
        match self.files.get_mut(p) {
            None => false,
            Some(c) => {
                c.resize(size, 0);
                true
            }
        }
    }
    fn remove(&mut self, p: &str) -> bool {
        self.files.remove(p).is_some()
    }
    fn size(&self, p: &str) -> Option<usize> {
        self.files.get(p).map(|c| c.len())
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs a whole cluster: keep the count sane
        .. ProptestConfig::default()
    })]

    #[test]
    fn gekkofs_agrees_with_reference_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        // Small chunks force multi-node striping even with small data.
        let cluster = Cluster::deploy(
            ClusterConfig::new(3).with_chunk_size(4096)
        ).unwrap();
        let fs = cluster.mount().unwrap();
        let mut model = Model::default();

        for op in &ops {
            match op {
                Op::Create(f) => {
                    let p = path(*f);
                    let expect = model.create(&p);
                    let got = fs.create(&p, 0o644);
                    prop_assert_eq!(expect, got.is_ok(), "create {} -> {:?}", p, got);
                    if !expect {
                        prop_assert!(matches!(got, Err(GkfsError::Exists)));
                    }
                }
                Op::Write { file, offset, len, seed } => {
                    let p = path(*file);
                    let data = pattern(*seed, *len as usize);
                    let expect = model.write(&p, *offset as usize, &data);
                    // The handle API checks existence at open time, so
                    // a write to a missing file fails there — exactly
                    // the model's rule, with no metadata resurrection
                    // to undo (the old path-shim quirk).
                    let got = fs.open_handle(&p, OpenFlags::WRONLY).and_then(|h| {
                        h.pwrite(*offset as u64, &data)?;
                        h.close()
                    });
                    prop_assert_eq!(expect, got.is_ok(), "write {} -> {:?}", p, got);
                }
                Op::Read { file, offset, len } => {
                    let p = path(*file);
                    match model.read(&p, *offset as usize, *len as usize) {
                        Some(expect) => {
                            let h = fs.open_handle(&p, OpenFlags::RDONLY).unwrap();
                            let got = h.pread(*offset as u64, *len as usize).unwrap();
                            prop_assert_eq!(&expect, &got, "read {} @{}+{}", p, offset, len);
                        }
                        None => {
                            prop_assert!(fs.open_handle(&p, OpenFlags::RDONLY).is_err());
                        }
                    }
                }
                Op::Truncate { file, size } => {
                    let p = path(*file);
                    let expect = model.truncate(&p, *size as usize);
                    let got = fs.truncate(&p, *size as u64);
                    prop_assert_eq!(expect, got.is_ok());
                }
                Op::Remove(f) => {
                    let p = path(*f);
                    let expect = model.remove(&p);
                    let got = fs.unlink(&p);
                    prop_assert_eq!(expect, got.is_ok(), "remove {}", p);
                }
                Op::Stat(f) => {
                    let p = path(*f);
                    match model.size(&p) {
                        Some(size) => {
                            let m = fs.stat(&p).unwrap();
                            prop_assert_eq!(size as u64, m.size, "size of {}", p);
                        }
                        None => prop_assert!(fs.stat(&p).is_err()),
                    }
                }
            }
        }

        // Final full-content check of every surviving file.
        for (p, contents) in &model.files {
            let m = fs.stat(p).unwrap();
            prop_assert_eq!(contents.len() as u64, m.size);
            let h = fs.open_handle(p, OpenFlags::RDONLY).unwrap();
            let got = h.pread(0, contents.len()).unwrap();
            prop_assert_eq!(contents, &got, "final contents of {}", p);
        }
        cluster.shutdown();
    }
}
