//! Moderate-scale smoke tests: more files, more bytes, more
//! concurrency than the unit tests — the shapes the paper's §IV
//! workloads have, at a size a debug test run can afford.

use gekkofs::{Cluster, ClusterConfig, OpenFlags};
use gkfs_integration::payload;

#[test]
fn twenty_thousand_files_lifecycle() {
    let cluster = Cluster::deploy(ClusterConfig::new(8)).unwrap();
    let ranks = 8;
    let per_rank = 2_500;

    // Create.
    std::thread::scope(|s| {
        for r in 0..ranks {
            let cluster = &cluster;
            s.spawn(move || {
                let fs = cluster.mount().unwrap();
                for i in 0..per_rank {
                    let fd = fs
                        .open(
                            &format!("/bulk/f.{r}.{i}"),
                            OpenFlags::WRONLY.with_create().with_exclusive(),
                        )
                        .unwrap();
                    fs.close(fd).unwrap();
                }
            });
        }
    });

    // All entries exist, spread across every daemon.
    let fs = cluster.mount().unwrap();
    let stats = fs.cluster_stats().unwrap();
    let total: u64 = stats.iter().map(|s| s.meta_entries).sum();
    assert_eq!(total, (ranks * per_rank) as u64 + 1, "files + root");
    assert!(
        stats.iter().all(|s| s.meta_entries > 1_000),
        "placement must spread: {:?}",
        stats.iter().map(|s| s.meta_entries).collect::<Vec<_>>()
    );

    // Stat everything (scattered over ranks again).
    std::thread::scope(|s| {
        for r in 0..ranks {
            let cluster = &cluster;
            s.spawn(move || {
                let fs = cluster.mount().unwrap();
                for i in 0..per_rank {
                    let m = fs.stat(&format!("/bulk/f.{r}.{i}")).unwrap();
                    assert_eq!(m.size, 0);
                }
            });
        }
    });

    // Remove everything; namespace ends empty.
    std::thread::scope(|s| {
        for r in 0..ranks {
            let cluster = &cluster;
            s.spawn(move || {
                let fs = cluster.mount().unwrap();
                for i in 0..per_rank {
                    fs.unlink(&format!("/bulk/f.{r}.{i}")).unwrap();
                }
            });
        }
    });
    let stats = fs.cluster_stats().unwrap();
    let total: u64 = stats.iter().map(|s| s.meta_entries).sum();
    assert_eq!(total, 1, "only the root remains");
    cluster.shutdown();
}

#[test]
fn sixty_four_megabytes_round_trip() {
    let cluster = Cluster::deploy(ClusterConfig::new(8)).unwrap(); // 512 KiB chunks
    let fs = cluster.mount().unwrap();
    let block = payload(4 * 1024 * 1024, 99); // 4 MiB pattern
    fs.create("/huge", 0o644).unwrap();

    // 16 x 4 MiB concurrent writers = 64 MiB.
    std::thread::scope(|s| {
        for w in 0..16u64 {
            let cluster = &cluster;
            let block = &block;
            s.spawn(move || {
                let fs = cluster.mount().unwrap();
                let h = fs.open_handle("/huge", OpenFlags::WRONLY).unwrap();
                h.pwrite(w * block.len() as u64, block).unwrap();
                h.close().unwrap();
            });
        }
    });
    assert_eq!(fs.stat("/huge").unwrap().size, 64 * 1024 * 1024);

    // Verify random windows rather than the whole 64 MiB.
    let h = fs.open_handle("/huge", OpenFlags::RDONLY).unwrap();
    for (i, off) in [0u64, 3_333_333, 17_000_000, 44_444_444, 63 * 1024 * 1024]
        .iter()
        .enumerate()
    {
        let len = 100_000usize;
        let got = h.pread(*off, len).unwrap();
        for (j, b) in got.iter().enumerate() {
            let pos = (*off as usize + j) % block.len();
            assert_eq!(*b, block[pos], "window {i} offset {off}+{j}");
        }
    }

    // Every daemon holds a share of the 128 chunks.
    let holders = fs
        .cluster_stats()
        .unwrap()
        .iter()
        .filter(|s| s.storage_write_bytes > 0)
        .count();
    assert_eq!(holders, 8);

    // Truncate down and ensure the space is actually dropped.
    fs.truncate("/huge", 1024).unwrap();
    assert_eq!(fs.stat("/huge").unwrap().size, 1024);
    fs.unlink("/huge").unwrap();
    cluster.shutdown();
}

#[test]
fn deep_directory_trees() {
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    let fs = cluster.mount().unwrap();
    // 6 levels deep, 3-way branching: 364 directories + leaf files.
    fn build(fs: &gekkofs::GekkoClient, base: &str, depth: usize) {
        if depth == 0 {
            fs.create(&format!("{base}/leaf"), 0o644).unwrap();
            return;
        }
        for b in 0..3 {
            let dir = format!("{base}/d{b}");
            fs.mkdir(&dir, 0o755).unwrap();
            build(fs, &dir, depth - 1);
        }
    }
    fs.mkdir("/tree", 0o755).unwrap();
    build(&fs, "/tree", 5);

    // Walk back down, counting leaves.
    fn walk(fs: &gekkofs::GekkoClient, base: &str) -> usize {
        let mut leaves = 0;
        for e in fs.readdir(base).unwrap() {
            let p = format!("{base}/{}", e.name);
            match e.kind {
                gekkofs::FileKind::Directory => leaves += walk(fs, &p),
                gekkofs::FileKind::File => leaves += 1,
            }
        }
        leaves
    }
    assert_eq!(walk(&fs, "/tree"), 3usize.pow(5));
    cluster.shutdown();
}
