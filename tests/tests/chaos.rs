//! Cluster-level chaos suite: deterministic fault injection under
//! real workloads.
//!
//! The contract under chaos is the one GekkoFS promises (it is a
//! temporary file system, explicitly *not* fault tolerant): every
//! operation either completes or returns a **typed error within its
//! deadline** — zero hangs, zero panics, zero silent corruption — and
//! the namespace is consistent (fsck) once the chaos stops.
//!
//! All fault streams are seeded ([`ChaosConfig`] uses splitmix64, no
//! wall-clock decisions), so a failing run reproduces exactly. CI runs
//! this suite in release mode with the three fixed seeds below.

use gekkofs::{ClusterConfig, Daemon, DaemonConfig, GekkoClient, OpenFlags, RetryConfig};
use gkfs_rpc::{ChaosConfig, ChaosEndpoint, ChaosListener, Endpoint, EndpointOptions, TcpEndpoint};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fixed seeds CI exercises. Three distinct streams are enough to
/// hit every fault kind on every path; determinism makes more seeds a
/// coverage knob, not a flakiness knob.
const SEEDS: [u64; 3] = [0x5EED_0001, 0x5EED_0002, 0x5EED_0003];

/// Per-call endpoint timeout under chaos: a dropped request must burn
/// milliseconds, not the 30 s production default.
const CHAOS_TIMEOUT: Duration = Duration::from_millis(150);

/// Every single operation must resolve within the op deadline plus one
/// endpoint wait (the retry loop clamps each wait to the remaining
/// budget, so this bound is structural, not tuned).
const OP_BOUND: Duration = Duration::from_secs(4);

fn chaos_retry() -> RetryConfig {
    RetryConfig {
        max_attempts: 6,
        base_backoff_ms: 2,
        max_backoff_ms: 20,
        jitter_seed: 0x6b67_7330,
        // Breaker off: these tests measure the retry/deadline contract;
        // breaker fail-fast behavior is covered by fault_injection.rs.
        breaker_threshold: 0,
        breaker_cooldown_ms: 50,
        op_deadline_ms: 3_000,
    }
}

fn daemons(n: usize) -> Vec<Arc<Daemon>> {
    (0..n)
        .map(|_| Daemon::spawn(DaemonConfig::default()).unwrap())
        .collect()
}

/// Wrap each daemon's in-process endpoint in a seeded chaos injector.
fn chaos_endpoints(
    ds: &[Arc<Daemon>],
    cfg: impl Fn(u64) -> ChaosConfig,
    seed: u64,
) -> (Vec<Arc<dyn Endpoint>>, Vec<Arc<ChaosEndpoint>>) {
    let injectors: Vec<Arc<ChaosEndpoint>> = ds
        .iter()
        .enumerate()
        .map(|(node, d)| {
            let ep = d.endpoint_with(EndpointOptions::new().with_timeout(CHAOS_TIMEOUT));
            // Distinct stream per node so faults do not march in
            // lockstep across the cluster.
            ChaosEndpoint::new(ep, cfg(seed ^ ((node as u64) << 32)))
        })
        .collect();
    let endpoints = injectors
        .iter()
        .map(|e| e.clone() as Arc<dyn Endpoint>)
        .collect();
    (endpoints, injectors)
}

/// Run `op`, asserting it resolves inside the structural deadline
/// bound. Returns whether it succeeded.
fn bounded<T>(what: &str, op: impl FnOnce() -> gekkofs::Result<T>) -> bool {
    let t0 = Instant::now();
    let out = op();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < OP_BOUND,
        "{what} took {elapsed:?} — exceeded the deadline bound {OP_BOUND:?} (result ok={})",
        out.is_ok()
    );
    out.is_ok()
}

#[test]
fn mdtest_workload_under_light_chaos_is_bounded_and_fsck_clean() {
    for seed in SEEDS {
        let ds = daemons(3);
        let (endpoints, injectors) = chaos_endpoints(&ds, ChaosConfig::light, seed);
        let config = ClusterConfig::new(3).with_retry(chaos_retry());
        let fs = GekkoClient::mount(endpoints, &config)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: mount under light chaos failed: {e}"));

        // mdtest shape: create / stat / remove zero-byte files in one
        // shared directory. Every op must resolve in bounded time; under
        // *light* chaos with 6 retry attempts the vast majority succeed.
        let _ = bounded("mkdir", || fs.mkdir("/chaos", 0o755));
        let mut created = Vec::new();
        let mut failed = 0usize;
        for i in 0..120 {
            let p = format!("/chaos/file.{i}");
            if bounded(&p, || fs.create(&p, 0o644)) {
                created.push(p);
            } else {
                failed += 1;
            }
        }
        for p in &created {
            if !bounded(p, || fs.stat(p).map(|m| assert_eq!(m.size, 0))) {
                failed += 1;
            }
        }
        for p in &created {
            if !bounded(p, || fs.unlink(p)) {
                failed += 1;
            }
        }
        assert!(
            created.len() > failed,
            "seed {seed:#x}: light chaos should not defeat the retry layer \
             ({} created, {failed} failures)",
            created.len()
        );
        let injected: u64 = injectors.iter().map(|i| i.stats().total()).sum();
        assert!(injected > 0, "seed {seed:#x}: chaos never fired");

        // Post-chaos: a clean client sees a consistent namespace.
        let clean_eps: Vec<Arc<dyn Endpoint>> = ds.iter().map(|d| d.endpoint()).collect();
        let clean = GekkoClient::mount(clean_eps, &ClusterConfig::new(3)).unwrap();
        let report = clean.fsck().unwrap();
        assert!(
            report.is_clean(),
            "seed {seed:#x}: post-chaos fsck not clean: {report:?}"
        );
        for d in &ds {
            d.shutdown();
        }
    }
}

#[test]
fn smallfile_data_under_heavy_chaos_never_silently_corrupts() {
    for seed in SEEDS {
        let ds = daemons(2);
        let (endpoints, injectors) = chaos_endpoints(&ds, ChaosConfig::heavy, seed);
        let config = ClusterConfig::new(2)
            .with_chunk_size(512)
            .with_retry(chaos_retry());
        let fs = match GekkoClient::mount(endpoints, &config) {
            Ok(fs) => fs,
            // Heavy chaos may legitimately defeat even 6 attempts on the
            // mount path — a typed error, which is the contract.
            Err(e) => {
                eprintln!("seed {seed:#x}: mount lost to heavy chaos ({e}) — acceptable");
                for d in &ds {
                    d.shutdown();
                }
                continue;
            }
        };

        let _ = bounded("mkdir", || fs.mkdir("/sf", 0o755));
        // smallfile shape: write whole small files, then read them back.
        // Reads that succeed must return exactly the written bytes —
        // chaos may fail an op, never falsify one. (Corrupt frames are
        // caught by the wire CRC and surface as retryable errors.)
        let mut written = Vec::new();
        for i in 0..40u8 {
            let p = format!("/sf/small.{i}");
            let data = vec![i ^ 0x5A; 2048];
            let wrote = bounded(&p, || {
                let h = fs.open_handle(&p, OpenFlags::WRONLY.with_create().with_exclusive())?;
                h.pwrite(0, &data)?;
                h.close()
            });
            if wrote {
                written.push((p, data));
            }
        }
        let mut verified = 0usize;
        for (p, data) in &written {
            let t0 = Instant::now();
            // A typed failure is allowed under heavy chaos; a reply
            // that claims success must be bit-exact.
            let back = fs
                .open_handle(p, OpenFlags::RDONLY)
                .and_then(|h| h.pread(0, data.len()));
            if let Ok(back) = back {
                assert_eq!(&back, data, "seed {seed:#x}: silent corruption on {p}");
                verified += 1;
            }
            assert!(t0.elapsed() < OP_BOUND, "seed {seed:#x}: read of {p} exceeded bound");
        }
        assert!(
            verified > 0,
            "seed {seed:#x}: heavy chaos should still let some reads through"
        );
        let injected: u64 = injectors.iter().map(|i| i.stats().total()).sum();
        assert!(injected > 0, "seed {seed:#x}: chaos never fired");

        // Best-effort cleanup under chaos, then consistency check from a
        // clean client. Surfaced unlink failures can strand chunk data
        // (meta removed, chunk removal lost) — fsck must *detect* that,
        // and purging must restore a clean namespace.
        for (p, _) in &written {
            let _ = bounded(p, || fs.unlink(p));
        }
        let clean_eps: Vec<Arc<dyn Endpoint>> = ds.iter().map(|d| d.endpoint()).collect();
        let clean = GekkoClient::mount(clean_eps, &ClusterConfig::new(2).with_chunk_size(512))
            .unwrap();
        let report = clean.fsck().unwrap();
        if !report.is_clean() {
            clean.fsck_purge(&report).unwrap();
            let after = clean.fsck().unwrap();
            assert!(
                after.is_clean(),
                "seed {seed:#x}: fsck --purge did not restore consistency: {after:?}"
            );
        }
        for d in &ds {
            d.shutdown();
        }
    }
}

#[test]
fn forced_write_back_flush_under_chaos_lands_fully_or_errors() {
    // The write-back contract under faults: a flush (`fsync`) that
    // reports success has landed *every* buffered byte — chaos may
    // fail the flush loudly, never drop the tail of the run silently.
    for seed in SEEDS {
        let ds = daemons(2);
        let (endpoints, injectors) = chaos_endpoints(&ds, ChaosConfig::heavy, seed);
        let config = ClusterConfig::new(2)
            .with_chunk_size(4096)
            .with_write_back(64 * 1024)
            .with_retry(chaos_retry());
        let fs = match GekkoClient::mount(endpoints, &config) {
            Ok(fs) => fs,
            Err(e) => {
                eprintln!("seed {seed:#x}: mount lost to heavy chaos ({e}) — acceptable");
                for d in &ds {
                    d.shutdown();
                }
                continue;
            }
        };

        let mut acked: Vec<(String, Vec<u8>)> = Vec::new();
        for i in 0..24u8 {
            let p = format!("/wbf/run.{i}");
            let Ok(h) = fs.open_handle(&p, OpenFlags::WRONLY.with_create()) else {
                continue;
            };
            // Buffer a multi-chunk run of small sequential writes (all
            // absorbed client-side: no RPCs yet, so none can fail).
            let data: Vec<u8> = (0..12 * 1024u32).map(|b| (b as u8) ^ i).collect();
            let mut all_buffered = true;
            for j in 0..12 {
                if h.pwrite((j * 1024) as u64, &data[j * 1024..(j + 1) * 1024]).is_err() {
                    all_buffered = false;
                    break;
                }
            }
            if !all_buffered {
                continue;
            }
            // The forced flush is the all-or-error point.
            if bounded(&p, || h.fsync()) {
                acked.push((p, data));
            }
        }
        let injected: u64 = injectors.iter().map(|i| i.stats().total()).sum();
        assert!(injected > 0, "seed {seed:#x}: chaos never fired");

        // Judge acked flushes from a clean client: size and bytes must
        // both be complete — a short file here is a silently lost tail.
        let clean_eps: Vec<Arc<dyn Endpoint>> = ds.iter().map(|d| d.endpoint()).collect();
        let clean = GekkoClient::mount(
            clean_eps,
            &ClusterConfig::new(2).with_chunk_size(4096),
        )
        .unwrap();
        for (p, data) in &acked {
            let m = clean.stat(p).unwrap();
            assert_eq!(
                m.size,
                data.len() as u64,
                "seed {seed:#x}: flush acked but size is short on {p}"
            );
            let h = clean.open_handle(p, OpenFlags::RDONLY).unwrap();
            assert_eq!(
                &h.pread(0, data.len()).unwrap(),
                data,
                "seed {seed:#x}: flush acked but bytes lost on {p}"
            );
        }
        assert!(
            !acked.is_empty(),
            "seed {seed:#x}: heavy chaos should still let some flushes through"
        );
        for d in &ds {
            d.shutdown();
        }
    }
}

#[test]
fn forced_flush_after_daemon_kill_errors_or_lands_completely() {
    // Kill a daemon while a handle still holds a buffered run, then
    // force the flush. The flush must either surface a typed error or
    // — if every chunk of the run happens to live on surviving nodes —
    // land completely and read back bit-exact. Nothing in between.
    let ds = daemons(2);
    let endpoints: Vec<Arc<dyn Endpoint>> = ds.iter().map(|d| d.endpoint()).collect();
    let config = ClusterConfig::new(2)
        .with_chunk_size(4096)
        .with_write_back(64 * 1024);
    let fs = GekkoClient::mount(endpoints, &config).unwrap();

    let h = fs
        .open_handle("/kill/buffered", OpenFlags::RDWR.with_create())
        .unwrap();
    let data: Vec<u8> = (0..32 * 1024u32).map(|b| (b % 241) as u8).collect();
    for j in 0..32 {
        h.pwrite((j * 1024) as u64, &data[j * 1024..(j + 1) * 1024]).unwrap();
    }

    // Mid-flight kill: the 8-chunk run is hash-striped over both
    // nodes, so the dead daemon almost certainly owns part of it.
    ds[1].shutdown();

    match h.fsync() {
        Err(_) => {
            // Loud failure: the contract held. The buffered tail was
            // not silently dropped — the caller knows to recover.
        }
        Ok(()) => {
            // Success claims every chunk landed on live nodes; the
            // same handle (cached size, no stat RPC) must read the
            // whole run back bit-exact.
            assert_eq!(
                h.pread(0, data.len()).unwrap(),
                data,
                "flush acked after daemon kill but bytes are not readable"
            );
        }
    }
    drop(h);
    ds[0].shutdown();
}

#[test]
fn chaos_fault_stream_is_deterministic_per_seed() {
    // Two fresh clusters, same seed, same single-threaded op sequence →
    // byte-identical fault decisions. This is what makes a chaos
    // failure in CI reproducible at the desk.
    let run = |seed: u64| -> Vec<u64> {
        let ds = daemons(2);
        let (endpoints, injectors) = chaos_endpoints(&ds, ChaosConfig::heavy, seed);
        let config = ClusterConfig::new(2).with_retry(chaos_retry());
        if let Ok(fs) = GekkoClient::mount(endpoints, &config) {
            for i in 0..60 {
                let p = format!("/det/f{i}");
                let _ = fs.create(&p, 0o644);
                let _ = fs.stat(&p);
                let _ = fs.unlink(&p);
            }
        }
        let stats: Vec<u64> = injectors
            .iter()
            .flat_map(|i| {
                let s = i.stats();
                [
                    s.dropped_requests.load(std::sync::atomic::Ordering::Relaxed),
                    s.dropped_replies.load(std::sync::atomic::Ordering::Relaxed),
                    s.duplicates.load(std::sync::atomic::Ordering::Relaxed),
                    s.corruptions.load(std::sync::atomic::Ordering::Relaxed),
                    s.resets.load(std::sync::atomic::Ordering::Relaxed),
                    s.delays.load(std::sync::atomic::Ordering::Relaxed),
                ]
            })
            .collect();
        for d in &ds {
            d.shutdown();
        }
        stats
    };
    let first = run(SEEDS[0]);
    let second = run(SEEDS[0]);
    assert_eq!(first, second, "same seed must replay the same fault stream");
    assert!(first.iter().sum::<u64>() > 0, "chaos never fired");
}

#[test]
fn tcp_cluster_survives_chaos_proxy_and_mid_workload_resets() {
    let seed = SEEDS[0];
    let ds = daemons(2);
    let addrs: Vec<std::net::SocketAddr> = ds
        .iter()
        .map(|d| d.serve_tcp("127.0.0.1:0").unwrap())
        .collect();
    // A wire-level chaos proxy in front of each daemon: real frames,
    // real corruption (caught by CRC), real connection resets.
    let proxies: Vec<Arc<ChaosListener>> = addrs
        .iter()
        .enumerate()
        .map(|(node, a)| {
            ChaosListener::spawn(*a, ChaosConfig::light(seed ^ ((node as u64) << 32))).unwrap()
        })
        .collect();
    let endpoints: Vec<Arc<dyn Endpoint>> = proxies
        .iter()
        .map(|p| {
            TcpEndpoint::connect_with(
                &p.local_addr().to_string(),
                EndpointOptions::new().with_timeout(Duration::from_millis(300)),
            )
            .unwrap() as Arc<dyn Endpoint>
        })
        .collect();
    let config = ClusterConfig::new(2).with_retry(chaos_retry());
    let fs = GekkoClient::mount(endpoints, &config).expect("mount through light chaos proxies");

    let _ = bounded("mkdir", || fs.mkdir("/tcp", 0o755));
    let mut ok = 0usize;
    let mut failed = 0usize;
    for batch in 0..3 {
        for i in 0..40 {
            let p = format!("/tcp/b{batch}.f{i}");
            if bounded(&p, || fs.create(&p, 0o644)) {
                ok += 1;
            } else {
                failed += 1;
            }
        }
        // Mid-workload, forcibly sever every proxied connection: all
        // in-flight requests fail retryably and the endpoints must
        // re-dial without being told.
        for p in &proxies {
            p.sever_connections();
        }
    }
    assert!(ok > failed, "retry + reconnect should carry the workload ({ok} ok, {failed} failed)");
    let reconnects: u64 = fs.node_health().iter().map(|h| h.reconnects).sum();
    assert!(
        reconnects >= 1,
        "severing live connections must force TCP re-dials (saw {reconnects})"
    );

    // Post-chaos consistency, judged over direct (un-proxied) TCP.
    let clean = gekkofs::TcpCluster::mount_remote(&addrs, &ClusterConfig::new(2)).unwrap();
    let report = clean.fsck().unwrap();
    assert!(report.is_clean(), "post-chaos fsck not clean: {report:?}");

    for p in &proxies {
        p.shutdown();
    }
    for d in &ds {
        d.shutdown();
    }
}
