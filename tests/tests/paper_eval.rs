//! The paper's whole §IV evaluation protocol as one integration test:
//! every workload the paper runs (plus the trace replayer) against one
//! shared namespace, back to back, exactly like a benchmarking
//! campaign on a real deployment — including the between-run cleanup
//! the paper performs ("all SSD contents are removed" between
//! iterations, here: the namespace must return to empty).

use gekkofs::{Cluster, ClusterConfig};
use gkfs_workloads::{
    checkpoint_trace, replay_trace, run_ior, run_mdtest, run_smallfile, IorConfig, MdtestConfig,
    SmallFileConfig,
};

#[test]
fn full_evaluation_protocol() {
    let cluster = Cluster::deploy(
        ClusterConfig::new(4).with_chunk_size(64 * 1024),
    )
    .unwrap();

    // --- §IV-A: mdtest, single dir ---------------------------------
    let md = run_mdtest(
        &cluster,
        &MdtestConfig {
            processes: 4,
            files_per_process: 400,
            work_dir: "/mdtest".into(),
            unique_dir: false,
        },
    )
    .unwrap();
    assert!(md.creates_per_sec() > 1_000.0, "sanity: {:.0}", md.creates_per_sec());

    // --- §IV-B: IOR, file-per-process sequential + random ----------
    for random in [false, true] {
        let ior = run_ior(
            &cluster,
            &IorConfig {
                processes: 4,
                transfer_size: 8 * 1024,
                block_size: 512 * 1024,
                file_per_process: true,
                random,
                work_dir: format!("/ior-{random}"),
            },
        )
        .unwrap();
        assert!(ior.write_mib_per_sec() > 0.0);
        assert!(ior.read_mib_per_sec() > 0.0);
        assert!(gkfs_workloads::ior::verify_ior(&cluster, &IorConfig {
            processes: 4,
            transfer_size: 8 * 1024,
            block_size: 512 * 1024,
            file_per_process: true,
            random,
            work_dir: format!("/ior-{random}"),
        })
        .unwrap());
    }

    // --- §IV-B: shared file ----------------------------------------
    let shared = run_ior(
        &cluster,
        &IorConfig {
            processes: 4,
            transfer_size: 8 * 1024,
            block_size: 256 * 1024,
            file_per_process: false,
            random: false,
            work_dir: "/ior-shared".into(),
        },
    )
    .unwrap();
    assert!(shared.write_iops() > 0.0);

    // --- §I: small-file data-science ingest -------------------------
    let sf = run_smallfile(
        &cluster,
        &SmallFileConfig {
            processes: 3,
            files_per_process: 50,
            file_size: 8 * 1024,
            work_dir: "/corpus".into(),
        },
    )
    .unwrap();
    assert_eq!(sf.listed_entries, 150);

    // --- checkpoint/restart trace replay -----------------------------
    let trace = checkpoint_trace(4, 3, 64 * 1024);
    let rep = replay_trace(|| cluster.mount(), 4, &trace).unwrap();
    assert_eq!(rep.bytes_written, 4 * 3 * 64 * 1024);

    // --- campaign hygiene: fsck is clean, then full cleanup ----------
    let fs = cluster.mount().unwrap();
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert!(
        report.files_checked > 150,
        "all workloads' files visible: {}",
        report.files_checked
    );

    // Remove everything; the namespace must return to just "/".
    fn purge(fs: &gekkofs::GekkoClient, dir: &str) {
        for e in fs.readdir(dir).unwrap() {
            let p = if dir == "/" {
                format!("/{}", e.name)
            } else {
                format!("{dir}/{}", e.name)
            };
            match e.kind {
                gekkofs::FileKind::Directory => {
                    purge(fs, &p);
                    fs.rmdir(&p).unwrap();
                }
                gekkofs::FileKind::File => fs.unlink(&p).unwrap(),
            }
        }
    }
    purge(&fs, "/");
    assert!(fs.readdir("/").unwrap().is_empty());
    let stats = fs.cluster_stats().unwrap();
    let total: u64 = stats.iter().map(|s| s.meta_entries).sum();
    assert_eq!(total, 1, "only the root object survives the campaign");
    cluster.shutdown();
}
