//! End-to-end scenarios across the full stack, on both transports.

use gekkofs::cluster::TcpCluster;
use gekkofs::{Cluster, ClusterConfig, FileKind, GkfsError, OpenFlags, Whence};
use gkfs_integration::{payload, small_chunk_cluster};

#[test]
fn checkpoint_restart_scenario() {
    // The burst-buffer use case from the paper's intro: ranks dump
    // checkpoints, a later phase reads them back.
    let cluster = small_chunk_cluster(8, 64 * 1024).unwrap();
    let ranks = 16;
    let ckpt = payload(300_000, 42);

    // Rank 0 lays out the directory tree (directories are objects in
    // the flat namespace; readdir needs the object to exist).
    {
        let fs = cluster.mount().unwrap();
        fs.mkdir("/ckpt", 0o755).unwrap();
        fs.mkdir("/ckpt/step-1", 0o755).unwrap();
    }

    // Phase 1: every rank writes its checkpoint concurrently.
    std::thread::scope(|s| {
        for rank in 0..ranks {
            let cluster = &cluster;
            let ckpt = &ckpt;
            s.spawn(move || {
                let fs = cluster.mount().unwrap();
                let path = format!("/ckpt/step-1/rank-{rank:04}");
                let h = fs
                    .open_handle(&path, OpenFlags::WRONLY.with_create().with_exclusive())
                    .unwrap();
                h.pwrite(0, ckpt).unwrap();
                h.close().unwrap();
            });
        }
    });

    // Phase 2: a fresh client (the "restarted job") reads them all.
    let fs = cluster.mount().unwrap();
    for rank in 0..ranks {
        let path = format!("/ckpt/step-1/rank-{rank:04}");
        let h = fs.open_handle(&path, OpenFlags::RDONLY).unwrap();
        // The open-time stat seeds the handle's size cache; the read
        // itself pays no further stat round trip.
        assert_eq!(h.size(), ckpt.len() as u64);
        let back = h.pread(0, ckpt.len()).unwrap();
        assert_eq!(back, ckpt, "rank {rank} checkpoint corrupted");
        h.close().unwrap();
    }

    // The namespace lists all checkpoints (readdir broadcast).
    let entries = fs.readdir("/ckpt/step-1").unwrap();
    assert_eq!(entries.len(), ranks);
    cluster.shutdown();
}

#[test]
fn producer_consumer_pipeline() {
    // Data-driven workflow: producer writes records, consumer reads
    // them from another client as soon as sizes are published.
    let cluster = small_chunk_cluster(4, 16 * 1024).unwrap();
    let producer = cluster.mount().unwrap();
    let consumer = cluster.mount().unwrap();

    let prod = producer
        .open_handle("/pipe/records", OpenFlags::WRONLY.with_create().with_exclusive())
        .unwrap();
    let record = payload(10_000, 7);
    for i in 0..20u64 {
        prod.pwrite(i * record.len() as u64, &record).unwrap();
        prod.flush().unwrap();
        // Strong single-file consistency: once flushed, the consumer
        // immediately sees the new size and the data. Cross-client
        // growth is a re-open event under the handle contract, so the
        // consumer opens a fresh handle per record.
        let size = consumer.stat("/pipe/records").unwrap().size;
        assert_eq!(size, (i + 1) * record.len() as u64);
        let h = consumer.open_handle("/pipe/records", OpenFlags::RDONLY).unwrap();
        let back = h.pread(i * record.len() as u64, record.len()).unwrap();
        assert_eq!(back, record);
    }
    prod.close().unwrap();
    cluster.shutdown();
}

#[test]
fn same_behaviour_over_tcp() {
    let config = ClusterConfig::new(3).with_chunk_size(32 * 1024);
    let cluster = TcpCluster::deploy(config.clone()).unwrap();
    let fs = cluster.mount().unwrap();

    fs.mkdir("/t", 0o755).unwrap();
    let data = payload(200_000, 99);
    let h = fs
        .open_handle("/t/blob", OpenFlags::WRONLY.with_create())
        .unwrap();
    h.pwrite(0, &data).unwrap();
    h.close().unwrap();

    // Second client over fresh connections sees everything.
    let fs2 = TcpCluster::mount_remote(cluster.addrs(), &config).unwrap();
    let h2 = fs2.open_handle("/t/blob", OpenFlags::RDONLY).unwrap();
    assert_eq!(h2.pread(0, data.len()).unwrap(), data);
    assert_eq!(fs2.readdir("/t").unwrap().len(), 1);

    // Partial reads at unaligned offsets over the wire.
    let mid = h2.pread(33_333, 44_444).unwrap();
    assert_eq!(mid, &data[33_333..33_333 + 44_444]);
    h2.close().unwrap();

    fs2.unlink("/t/blob").unwrap();
    assert!(matches!(fs.stat("/t/blob"), Err(GkfsError::NotFound)));
    cluster.shutdown();
}

#[test]
fn descriptor_semantics_full_matrix() {
    let cluster = Cluster::deploy(ClusterConfig::new(2)).unwrap();
    let fs = cluster.mount().unwrap();

    // O_EXCL create, dup sharing offsets, append interleave.
    let fd = fs
        .open("/m", OpenFlags::RDWR.with_create().with_exclusive())
        .unwrap();
    let fd2 = fs.dup(fd).unwrap();
    fs.write(fd, b"aaaa").unwrap();
    // dup'd fd shares the file offset.
    assert_eq!(fs.files().get(fd2).unwrap().pos(), 4);
    fs.write(fd2, b"bbbb").unwrap();
    fs.lseek(fd, 0, Whence::Set).unwrap();
    assert_eq!(fs.read(fd, 8).unwrap(), b"aaaabbbb");

    // Close one; the other still works.
    fs.close(fd).unwrap();
    assert_eq!(fs.pread(fd2, 4, 4).unwrap(), b"bbbb");
    fs.close(fd2).unwrap();

    // Read-only fd refuses writes; write-only refuses reads.
    let ro = fs.open("/m", OpenFlags::RDONLY).unwrap();
    assert!(matches!(fs.write(ro, b"x"), Err(GkfsError::BadFileDescriptor)));
    let wo = fs.open("/m", OpenFlags::WRONLY).unwrap();
    assert!(matches!(fs.read(wo, 1), Err(GkfsError::BadFileDescriptor)));
    fs.close(ro).unwrap();
    fs.close(wo).unwrap();
    cluster.shutdown();
}

#[test]
fn flat_namespace_properties() {
    // GekkoFS keeps a flat keyspace: files can be created under paths
    // whose parent "directories" were never made — exactly what lets
    // single-directory mdtest scale (§IV-A).
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    let fs = cluster.mount().unwrap();
    fs.create("/never/made/dirs/file", 0o644).unwrap();
    assert_eq!(fs.stat("/never/made/dirs/file").unwrap().kind, FileKind::File);

    // readdir of root still only lists direct children that exist as
    // objects.
    let root: Vec<String> = fs.readdir("/").unwrap().into_iter().map(|e| e.name).collect();
    assert!(!root.contains(&"never".to_string()), "no implicit dirs");

    // Path normalization: the same object through messy spellings.
    let h = fs
        .open_handle("/never/made/dirs/../dirs/file", OpenFlags::WRONLY)
        .unwrap();
    h.pwrite(0, b"x").unwrap();
    h.close().unwrap();
    assert_eq!(fs.stat("/never//made/./dirs/file").unwrap().size, 1);
    cluster.shutdown();
}

#[test]
fn large_striped_file_integrity() {
    // One big file striped over every daemon, verified byte-exact
    // through unaligned windows.
    let cluster = small_chunk_cluster(8, 8 * 1024).unwrap();
    let fs = cluster.mount().unwrap();
    let data = payload(1_000_000, 1234);
    let h = fs
        .open_handle("/big", OpenFlags::RDWR.with_create().with_exclusive())
        .unwrap();
    // Write in scattered order.
    let step = 100_000;
    let mut order: Vec<usize> = (0..10).collect();
    order.reverse();
    for i in order {
        let start = i * step;
        h.pwrite(start as u64, &data[start..start + step]).unwrap();
    }
    assert_eq!(fs.stat("/big").unwrap().size, 1_000_000);
    for (off, len) in [(0usize, 1_000_000usize), (1, 999_999), (123_456, 500_000), (999_000, 1000)] {
        let back = h.pread(off as u64, len).unwrap();
        assert_eq!(back, &data[off..off + len], "window {off}+{len}");
    }
    h.close().unwrap();
    // Every daemon holds some chunks.
    let with_data = fs
        .cluster_stats()
        .unwrap()
        .iter()
        .filter(|s| s.storage_write_bytes > 0)
        .count();
    assert_eq!(with_data, 8, "1 MB over 8 KiB chunks must hit all 8 nodes");
    cluster.shutdown();
}
