//! Consistency semantics from §III-A, verified as behaviour:
//! strong consistency for single-file operations, eventual consistency
//! for directory listings, documented relaxations for everything else.

use gekkofs::{Cluster, ClusterConfig, GkfsError, OpenFlags};
use gkfs_integration::payload;
use std::sync::atomic::{AtomicBool, Ordering};

#[test]
fn single_file_ops_are_strongly_consistent_across_clients() {
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    let a = cluster.mount().unwrap();
    let b = cluster.mount().unwrap();

    // Every operation by A is immediately visible to B — no caches,
    // no sessions (the paper's synchronous design).
    a.create("/strong", 0o644).unwrap();
    assert!(b.stat("/strong").is_ok());
    let ha = a.open_handle("/strong", OpenFlags::WRONLY).unwrap();
    ha.pwrite(0, b"v1").unwrap();
    ha.close().unwrap();
    let hb = b.open_handle("/strong", OpenFlags::RDONLY).unwrap();
    assert_eq!(hb.pread(0, 10).unwrap(), b"v1");
    hb.close().unwrap();
    a.truncate("/strong", 1).unwrap();
    assert_eq!(b.stat("/strong").unwrap().size, 1);
    a.unlink("/strong").unwrap();
    assert!(matches!(b.stat("/strong"), Err(GkfsError::NotFound)));
    cluster.shutdown();
}

#[test]
fn concurrent_create_exactly_one_winner_per_path() {
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    for round in 0..10 {
        let path = format!("/race-{round}");
        let wins: usize = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let cluster = &cluster;
                    let path = &path;
                    s.spawn(move || {
                        let fs = cluster.mount().unwrap();
                        fs.create(path, 0o644).is_ok() as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(wins, 1, "path {path}: exclusive create must have one winner");
    }
    cluster.shutdown();
}

#[test]
fn non_overlapping_concurrent_writes_all_land() {
    // §III-A: applications are responsible for avoiding *overlapping*
    // conflicts; non-overlapping regions must always be safe.
    let cluster = Cluster::deploy(ClusterConfig::new(4).with_chunk_size(4096)).unwrap();
    let setup = cluster.mount().unwrap();
    setup.create("/regions", 0o644).unwrap();
    let region = 10_000u64;
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let cluster = &cluster;
            s.spawn(move || {
                let fs = cluster.mount().unwrap();
                let data = payload(region as usize, t);
                let h = fs.open_handle("/regions", OpenFlags::WRONLY).unwrap();
                h.pwrite(t * region, &data).unwrap();
                h.close().unwrap();
            });
        }
    });
    let fs = cluster.mount().unwrap();
    let h = fs.open_handle("/regions", OpenFlags::RDONLY).unwrap();
    for t in 0..8u64 {
        let expect = payload(region as usize, t);
        let got = h.pread(t * region, region as usize).unwrap();
        assert_eq!(got, expect, "region {t} corrupted by concurrency");
    }
    h.close().unwrap();
    cluster.shutdown();
}

#[test]
fn readdir_is_eventually_consistent_but_stat_is_not() {
    // A reader listing a directory while a writer churns may see any
    // subset (the ls -l caveat, §III-A) — but it must never crash, and
    // every entry it returns must be a real file at some point.
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    let writer = cluster.mount().unwrap();
    let reader = cluster.mount().unwrap();
    writer.mkdir("/churn", 0o755).unwrap();

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..300 {
                let p = format!("/churn/f{i}");
                writer.create(&p, 0o644).unwrap();
                if i % 3 == 0 {
                    writer.unlink(&p).unwrap();
                }
            }
            stop.store(true, Ordering::SeqCst);
        });
        s.spawn(|| {
            let mut listings = 0;
            while !stop.load(Ordering::SeqCst) {
                let entries = reader.readdir("/churn").unwrap();
                // Monotone sanity: entries are sorted and unique.
                for w in entries.windows(2) {
                    assert!(w[0].name < w[1].name);
                }
                listings += 1;
            }
            assert!(listings > 0);
        });
    });

    // Quiescent state is exact: 200 files survive.
    let finals = reader.readdir("/churn").unwrap();
    assert_eq!(finals.len(), 200);
    cluster.shutdown();
}

#[test]
fn size_cache_trades_visibility_for_throughput() {
    // With the §IV-B cache, *other* clients may briefly see a stale
    // size (the documented relaxation); the writer itself must not.
    let cluster = Cluster::deploy(ClusterConfig::new(2).with_size_cache(100)).unwrap();
    let writer = cluster.mount().unwrap();
    let other = cluster.mount().unwrap();
    writer.create("/lazy", 0o644).unwrap();
    // Keep the handle open across the window: close() would flush the
    // buffered size update and end the staleness this test observes.
    let h = writer.open_handle("/lazy", OpenFlags::WRONLY).unwrap();
    h.pwrite(0, &[1u8; 500]).unwrap();

    // Writer: read-your-writes.
    assert_eq!(writer.stat("/lazy").unwrap().size, 500);
    // Other client: the update is still buffered client-side.
    assert_eq!(other.stat("/lazy").unwrap().size, 0, "stale by design");
    // After the writer flushes, everyone agrees.
    writer.flush_size("/lazy").unwrap();
    assert_eq!(other.stat("/lazy").unwrap().size, 500);
    h.close().unwrap();
    cluster.shutdown();
}

#[test]
fn chunk_data_is_visible_before_size_flush() {
    // The §IV-B cache only delays *metadata* size updates; the chunk
    // data itself is written synchronously. A reader who knows the
    // range (e.g. via application-level coordination, the common HPC
    // pattern) can read it before the flush.
    let cluster = Cluster::deploy(ClusterConfig::new(2).with_size_cache(100)).unwrap();
    let writer = cluster.mount().unwrap();
    writer.create("/early", 0o644).unwrap();
    let h = writer.open_handle("/early", OpenFlags::RDWR).unwrap();
    h.pwrite(0, b"already-there").unwrap();

    // Direct chunk read through a second client works once size is
    // known; here we verify via the writer's own view (the handle's
    // size cache makes the range known without a stat).
    assert_eq!(h.pread(0, 13).unwrap(), b"already-there");
    h.close().unwrap();
    cluster.shutdown();
}
