//! Failure behaviour: orderly shutdown, disk persistence, WAL
//! recovery, and resilience against malformed inputs.

use gekkofs::{Cluster, ClusterConfig, DaemonConfig, Daemon, GkfsError, OpenFlags};
use gkfs_integration::payload;
use gkfs_kvstore::{BlobStore, Db, DbOptions, MemBlobStore};
use std::sync::Arc;

#[test]
fn shutdown_is_orderly_and_refuses_new_work() {
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    let fs = cluster.mount().unwrap();
    fs.create("/pre-shutdown", 0o644).unwrap();
    cluster.shutdown();
    // All subsequent operations fail with a clean error, not a hang or
    // panic.
    assert!(matches!(
        fs.create("/post-shutdown", 0o644),
        Err(GkfsError::ShuttingDown)
    ));
    assert!(fs.stat("/pre-shutdown").is_err());
    assert!(fs.readdir("/").is_err());
}

#[test]
fn disk_backed_cluster_survives_redeploy() {
    // The "campaign" use case (§I): a temporary FS whose daemons are
    // restarted between jobs but keep their node-local state.
    let root = std::env::temp_dir().join(format!("gkfs-it-redeploy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let data = payload(100_000, 5);

    {
        let cluster = Cluster::deploy_with(ClusterConfig::new(3), |n| DaemonConfig {
            root_dir: Some(root.join(format!("node-{n}"))),
            kv_wal: true,
            ..DaemonConfig::default()
        })
        .unwrap();
        let fs = cluster.mount().unwrap();
        let h = fs
            .open_handle("/campaign/data", OpenFlags::WRONLY.with_create())
            .unwrap();
        h.pwrite(0, &data).unwrap();
        h.close().unwrap();
        cluster.shutdown();
    }

    {
        // "Next job": fresh daemons over the same node-local dirs.
        let cluster = Cluster::deploy_with(ClusterConfig::new(3), |n| DaemonConfig {
            root_dir: Some(root.join(format!("node-{n}"))),
            kv_wal: true,
            ..DaemonConfig::default()
        })
        .unwrap();
        let fs = cluster.mount().unwrap();
        let h = fs.open_handle("/campaign/data", OpenFlags::RDONLY).unwrap();
        assert_eq!(h.size(), data.len() as u64);
        assert_eq!(
            h.pread(0, data.len()).unwrap(),
            data,
            "campaign data must survive daemon restarts"
        );
        h.close().unwrap();
        cluster.shutdown();
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn wal_recovery_replays_unflushed_writes() {
    let store = Arc::new(MemBlobStore::new());
    let opts = DbOptions {
        wal: true,
        memtable_bytes: usize::MAX >> 1, // never auto-flush: WAL only
        ..DbOptions::default()
    };
    {
        let db = Db::open(store.clone(), opts.clone()).unwrap();
        for i in 0..500 {
            db.put(format!("/wal/{i}").as_bytes(), b"v").unwrap();
        }
        db.delete(b"/wal/13").unwrap();
        // Simulated crash: drop without flushing.
    }
    let db = Db::open(store, opts).unwrap();
    assert_eq!(db.len().unwrap(), 499);
    assert!(db.get(b"/wal/13").unwrap().is_none());
    assert_eq!(db.get(b"/wal/499").unwrap().as_deref(), Some(&b"v"[..]));
}

#[test]
fn torn_wal_tail_recovers_prefix() {
    let store = Arc::new(MemBlobStore::new());
    let opts = DbOptions {
        wal: true,
        memtable_bytes: usize::MAX >> 1,
        ..DbOptions::default()
    };
    {
        let db = Db::open(store.clone(), opts.clone()).unwrap();
        for i in 0..100 {
            db.put(format!("/t/{i:03}").as_bytes(), b"v").unwrap();
        }
    }
    // Tear the log mid-record (a crash during append).
    let log = store.read_logs().unwrap();
    store.reset_log().unwrap();
    store.append_log(&log[..log.len() - 7]).unwrap();

    let db = Db::open(store, opts).unwrap();
    let n = db.len().unwrap();
    assert_eq!(n, 99, "all complete records recover; the torn one is dropped");
}

#[test]
fn daemon_survives_malformed_rpc_bodies() {
    use gkfs_rpc::{Opcode, Request};
    let daemon = Daemon::spawn(DaemonConfig::default()).unwrap();
    let ep = daemon.endpoint();
    // Garbage bodies on every opcode: all must produce error responses,
    // never a panic or hang, and the daemon must stay serviceable.
    for op in [
        Opcode::Create,
        Opcode::Stat,
        Opcode::RemoveMeta,
        Opcode::UpdateSize,
        Opcode::TruncateMeta,
        Opcode::ReadDir,
        Opcode::WriteChunks,
        Opcode::ReadChunks,
        Opcode::RemoveChunks,
        Opcode::TruncateChunks,
    ] {
        for garbage in [vec![], vec![0xFF; 3], vec![0u8; 64], payload(33, op as u64)] {
            let resp = ep.call(Request::new(op, garbage)).unwrap();
            assert!(resp.into_result().is_err(), "{op:?} must reject garbage");
        }
    }
    // Still alive and correct afterwards.
    let resp = ep
        .call(Request::new(
            Opcode::Create,
            gkfs_rpc::proto::CreateReq {
                path: "/ok".into(),
                kind: 0,
                mode: 0o644,
                exclusive: true,
                now_ns: 0,
            }
            .encode(),
        ))
        .unwrap();
    assert!(resp.into_result().is_ok());
    daemon.shutdown();
}

#[test]
fn partial_failure_surfaces_cleanly() {
    // Shut down ONE daemon of four: operations that land on it fail
    // with ShuttingDown; operations owned by others still work. This
    // matches the paper's no-fault-tolerance stance — failures are
    // visible, not masked.
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    let fs = cluster.mount().unwrap();
    for i in 0..40 {
        fs.create(&format!("/pf/f{i}"), 0o644).unwrap();
    }
    cluster.daemon(2).shutdown();

    let mut ok = 0;
    let mut down = 0;
    for i in 0..40 {
        match fs.stat(&format!("/pf/f{i}")) {
            Ok(_) => ok += 1,
            Err(GkfsError::ShuttingDown) => down += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(ok > 0, "files on healthy daemons must remain reachable");
    assert!(down > 0, "files on the dead daemon must error cleanly");
    assert_eq!(ok + down, 40);
    cluster.shutdown();
}

#[test]
fn corrupted_sstable_is_detected_not_propagated() {
    use gkfs_kvstore::sstable::{Table, TableBuilder, Tag};
    let mut b = TableBuilder::new(100);
    for i in 0..100 {
        b.add(Tag::Put, format!("/k{i:03}").as_bytes(), b"value");
    }
    let mut blob = b.finish();
    // Flip one byte inside the data region.
    blob[10] ^= 0x80;
    let t = Table::open(Arc::new(blob)).unwrap();
    match t.get(b"/k001") {
        Err(GkfsError::Corruption(_)) => {}
        other => panic!("corruption must be detected, got {other:?}"),
    }
}
