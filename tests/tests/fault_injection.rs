//! Fault injection at the endpoint boundary: GekkoFS is deliberately
//! not fault tolerant (a temporary file system trades resilience for
//! speed), so the contract under failure is *clean surfacing* — every
//! fault becomes an error return, never a hang, panic, or silent
//! corruption — and *independence* — daemons that are healthy keep
//! serving the paths they own.
//!
//! Since the retry layer landed, transient faults are absorbed by the
//! client (bounded attempts with backoff, per-endpoint circuit
//! breakers), so persistent failures surface as either the transport
//! error itself or `Unavailable` once the breaker opens and fails
//! fast. Both are "clean": typed, prompt, and scoped to the failed
//! daemon's paths.

use gekkofs::{ClusterConfig, Daemon, DaemonConfig, GekkoClient, GkfsError};
use gkfs_common::config::RetryConfig;
use gkfs_rpc::testing::{DeadEndpoint, FlakyEndpoint, SlowEndpoint};
use gkfs_rpc::Endpoint;
use std::sync::Arc;
use std::time::Duration;

fn daemons(n: usize) -> Vec<Arc<Daemon>> {
    (0..n)
        .map(|_| Daemon::spawn(DaemonConfig::default()).unwrap())
        .collect()
}

#[test]
fn one_dead_daemon_partitions_cleanly() {
    let ds = daemons(4);
    let mut endpoints: Vec<Arc<dyn Endpoint>> = ds.iter().map(|d| d.endpoint()).collect();
    endpoints[1] = Arc::new(DeadEndpoint);
    let fs = GekkoClient::mount(endpoints, &ClusterConfig::new(4))
        .or_else(|_| {
            // If the root directory happens to live on the dead node,
            // mounting itself fails — also a clean outcome. Retry with
            // the dead endpoint elsewhere for the rest of the test.
            let mut endpoints: Vec<Arc<dyn Endpoint>> =
                ds.iter().map(|d| d.endpoint()).collect();
            endpoints[2] = Arc::new(DeadEndpoint);
            GekkoClient::mount(endpoints, &ClusterConfig::new(4))
        })
        .expect("root owner cannot be on two different dead nodes");

    let mut ok = 0;
    let mut dead = 0;
    let mut unavailable = 0;
    for i in 0..60 {
        match fs.create(&format!("/fi/f{i}"), 0o644) {
            Ok(()) => ok += 1,
            // Until the circuit breaker trips, retries exhaust and the
            // transport error surfaces; once it opens, the client fails
            // fast with `Unavailable` instead of re-dialing a corpse.
            Err(GkfsError::Rpc(_)) => dead += 1,
            Err(GkfsError::Unavailable(_)) => {
                dead += 1;
                unavailable += 1;
            }
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }
    assert!(ok > 0, "healthy daemons must keep accepting creates");
    assert!(dead > 0, "the dead daemon's paths must error");
    assert_eq!(ok + dead, 60);
    // Default breaker threshold (8 consecutive transport failures) is
    // crossed after two 4-attempt creates, so most dead-node errors
    // must be the fast-fail kind.
    assert!(
        unavailable > 0,
        "breaker should open and fail fast after repeated dead-node failures"
    );

    // Broadcast operations (readdir) surface the failure too.
    assert!(matches!(
        fs.readdir("/"),
        Err(GkfsError::Rpc(_) | GkfsError::Unavailable(_))
    ));
}

#[test]
fn flaky_daemon_faults_are_absorbed_by_retry() {
    let ds = daemons(2);
    // Node 0 fails every 5th RPC; node 1 is healthy. Every injected
    // fault is transient by construction (the very next call goes
    // through), which is exactly the shape the retry layer absorbs:
    // with the default 4-attempt policy no operation should ever
    // surface an error, and nothing may be corrupted along the way.
    let flaky = FlakyEndpoint::new(ds[0].endpoint(), 5);
    let endpoints: Vec<Arc<dyn Endpoint>> =
        vec![flaky as Arc<dyn Endpoint>, ds[1].endpoint()];
    let fs = GekkoClient::mount(endpoints, &ClusterConfig::new(2))
        .expect("mount retries past a transient fault");

    fs.mkdir("/flaky", 0o755).unwrap();
    for i in 0..100 {
        fs.create(&format!("/flaky/f{i}"), 0o644)
            .unwrap_or_else(|e| panic!("create f{i}: {e}"));
    }
    for i in 0..100 {
        let m = fs.stat(&format!("/flaky/f{i}")).unwrap();
        assert_eq!(m.size, 0);
    }
    // The health counters prove faults actually fired and were retried
    // (rather than the endpoint silently behaving).
    let health = fs.node_health();
    let retries: u64 = health.iter().map(|h| h.retries).sum();
    assert!(retries > 0, "expected injected faults to trigger retries");
    assert!(
        health.iter().all(|h| h.consecutive_failures == 0),
        "transient faults must not leave the breaker counting up"
    );
}

#[test]
fn disabled_retry_preserves_first_failure_surfacing() {
    // Applications that want the paper's original semantics — every
    // transport fault surfaces immediately — can opt out.
    let ds = daemons(2);
    let flaky = FlakyEndpoint::new(ds[0].endpoint(), 5);
    let endpoints: Vec<Arc<dyn Endpoint>> =
        vec![flaky.clone() as Arc<dyn Endpoint>, ds[1].endpoint()];
    let config = ClusterConfig::new(2).with_retry(RetryConfig::disabled());
    let fs = match GekkoClient::mount(endpoints, &config) {
        Ok(fs) => fs,
        Err(GkfsError::Rpc(_)) => {
            // Mount's root-create happened to hit an injected fault —
            // acceptable surfacing; remount (counter has advanced).
            let endpoints: Vec<Arc<dyn Endpoint>> =
                vec![flaky.clone() as Arc<dyn Endpoint>, ds[1].endpoint()];
            GekkoClient::mount(endpoints, &config).unwrap()
        }
        Err(e) => panic!("unexpected mount failure: {e}"),
    };

    let mut created = 0;
    let mut surfaced = 0;
    for i in 0..100 {
        match fs.create(&format!("/flaky/f{i}"), 0o644) {
            Ok(()) => created += 1,
            Err(GkfsError::Rpc(_)) => surfaced += 1,
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }
    assert!(created > 0);
    assert!(
        surfaced > 0,
        "with retries disabled, injected faults must surface to the caller"
    );
    let health = fs.node_health();
    assert!(health.iter().all(|h| h.retries == 0));
}

#[test]
fn slow_daemon_slows_but_completes() {
    let ds = daemons(2);
    let endpoints: Vec<Arc<dyn Endpoint>> = vec![
        SlowEndpoint::new(ds[0].endpoint(), Duration::from_millis(5)),
        ds[1].endpoint(),
    ];
    let fs = GekkoClient::mount(endpoints, &ClusterConfig::new(2)).unwrap();
    // Operations spanning both daemons (readdir broadcast) complete
    // with correct results despite the asymmetric latency.
    fs.mkdir("/slow", 0o755).unwrap();
    for i in 0..10 {
        fs.create(&format!("/slow/f{i}"), 0o644).unwrap();
    }
    let listing = fs.readdir("/slow").unwrap();
    assert_eq!(listing.len(), 10);
}

#[test]
fn write_failure_reports_but_size_not_silently_wrong() {
    // A write whose chunk RPC fails must error; afterwards the stat
    // must never report bytes that were not acknowledged. Retries are
    // disabled so every injected fault reaches the caller — the
    // acknowledged-bytes invariant must hold under the worst surfacing.
    let ds = daemons(2);
    let flaky = FlakyEndpoint::new(ds[0].endpoint(), 2); // every 2nd call dies
    let endpoints: Vec<Arc<dyn Endpoint>> = vec![flaky, ds[1].endpoint()];
    let config = ClusterConfig::new(2)
        .with_chunk_size(4096)
        .with_retry(RetryConfig::disabled());
    let fs = match GekkoClient::mount(endpoints, &config) {
        Ok(fs) => fs,
        Err(_) => return, // root landed on the flaky node's bad call: fine
    };
    let _ = fs.create("/wf", 0o644);
    let Ok(h) = fs.open_handle("/wf", gkfs_common::OpenFlags::WRONLY) else {
        return; // open-time stat hit the flaky node: fine
    };
    let mut acked: u64 = 0;
    for i in 0..40u64 {
        if h.pwrite(i * 100, &[7u8; 100]).is_ok() {
            acked = acked.max(i * 100 + 100);
        }
    }
    let _ = h.close();
    if let Ok(m) = fs.stat("/wf") {
        assert!(
            m.size <= acked || acked == 0,
            "reported size {} exceeds acknowledged bytes {}",
            m.size,
            acked
        );
    }
}
