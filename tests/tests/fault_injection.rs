//! Fault injection at the endpoint boundary: GekkoFS is deliberately
//! not fault tolerant (a temporary file system trades resilience for
//! speed), so the contract under failure is *clean surfacing* — every
//! fault becomes an error return, never a hang, panic, or silent
//! corruption — and *independence* — daemons that are healthy keep
//! serving the paths they own.

use gekkofs::{ClusterConfig, Daemon, DaemonConfig, GekkoClient, GkfsError};
use gkfs_rpc::testing::{DeadEndpoint, FlakyEndpoint, SlowEndpoint};
use gkfs_rpc::Endpoint;
use std::sync::Arc;
use std::time::Duration;

fn daemons(n: usize) -> Vec<Arc<Daemon>> {
    (0..n)
        .map(|_| Daemon::spawn(DaemonConfig::default()).unwrap())
        .collect()
}

#[test]
fn one_dead_daemon_partitions_cleanly() {
    let ds = daemons(4);
    let mut endpoints: Vec<Arc<dyn Endpoint>> = ds.iter().map(|d| d.endpoint()).collect();
    endpoints[1] = Arc::new(DeadEndpoint);
    let fs = GekkoClient::mount(endpoints, &ClusterConfig::new(4))
        .or_else(|_| {
            // If the root directory happens to live on the dead node,
            // mounting itself fails — also a clean outcome. Retry with
            // the dead endpoint elsewhere for the rest of the test.
            let mut endpoints: Vec<Arc<dyn Endpoint>> =
                ds.iter().map(|d| d.endpoint()).collect();
            endpoints[2] = Arc::new(DeadEndpoint);
            GekkoClient::mount(endpoints, &ClusterConfig::new(4))
        })
        .expect("root owner cannot be on two different dead nodes");

    let mut ok = 0;
    let mut dead = 0;
    for i in 0..60 {
        match fs.create(&format!("/fi/f{i}"), 0o644) {
            Ok(()) => ok += 1,
            Err(GkfsError::Rpc(_)) => dead += 1,
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }
    assert!(ok > 0, "healthy daemons must keep accepting creates");
    assert!(dead > 0, "the dead daemon's paths must error");
    assert_eq!(ok + dead, 60);

    // Broadcast operations (readdir) surface the failure too.
    assert!(matches!(fs.readdir("/"), Err(GkfsError::Rpc(_))));
}

#[test]
fn flaky_daemon_errors_do_not_corrupt_survivors() {
    let ds = daemons(2);
    // Node 0 fails every 5th RPC; node 1 is healthy.
    let flaky = FlakyEndpoint::new(ds[0].endpoint(), 5);
    let endpoints: Vec<Arc<dyn Endpoint>> =
        vec![flaky.clone() as Arc<dyn Endpoint>, ds[1].endpoint()];
    let fs = match GekkoClient::mount(endpoints, &ClusterConfig::new(2)) {
        Ok(fs) => fs,
        Err(GkfsError::Rpc(_)) => {
            // Mount's root-create happened to hit an injected fault —
            // acceptable surfacing; remount (counter has advanced).
            let endpoints: Vec<Arc<dyn Endpoint>> =
                vec![flaky.clone() as Arc<dyn Endpoint>, ds[1].endpoint()];
            GekkoClient::mount(endpoints, &ClusterConfig::new(2)).unwrap()
        }
        Err(e) => panic!("unexpected mount failure: {e}"),
    };

    let mut created = Vec::new();
    for i in 0..100 {
        let p = format!("/flaky/f{i}");
        if fs.create(&p, 0o644).is_ok() {
            created.push(p);
        }
    }
    assert!(!created.is_empty());
    // Every file whose create succeeded must be fully intact — retry
    // stats that hit injected faults (the fault is transient by
    // construction, and GekkoFS leaves retries to the application).
    for p in &created {
        let mut attempts = 0;
        loop {
            match fs.stat(p) {
                Ok(m) => {
                    assert_eq!(m.size, 0);
                    break;
                }
                Err(GkfsError::Rpc(_)) if attempts < 3 => attempts += 1,
                Err(e) => panic!("{p}: {e}"),
            }
        }
    }
}

#[test]
fn slow_daemon_slows_but_completes() {
    let ds = daemons(2);
    let endpoints: Vec<Arc<dyn Endpoint>> = vec![
        SlowEndpoint::new(ds[0].endpoint(), Duration::from_millis(5)),
        ds[1].endpoint(),
    ];
    let fs = GekkoClient::mount(endpoints, &ClusterConfig::new(2)).unwrap();
    // Operations spanning both daemons (readdir broadcast) complete
    // with correct results despite the asymmetric latency.
    fs.mkdir("/slow", 0o755).unwrap();
    for i in 0..10 {
        fs.create(&format!("/slow/f{i}"), 0o644).unwrap();
    }
    let listing = fs.readdir("/slow").unwrap();
    assert_eq!(listing.len(), 10);
}

#[test]
fn write_failure_reports_but_size_not_silently_wrong() {
    // A write whose chunk RPC fails must error; afterwards the stat
    // must never report bytes that were not acknowledged.
    let ds = daemons(2);
    let flaky = FlakyEndpoint::new(ds[0].endpoint(), 2); // every 2nd call dies
    let endpoints: Vec<Arc<dyn Endpoint>> = vec![flaky, ds[1].endpoint()];
    let config = ClusterConfig::new(2).with_chunk_size(4096);
    let fs = match GekkoClient::mount(endpoints, &config) {
        Ok(fs) => fs,
        Err(_) => return, // root landed on the flaky node's bad call: fine
    };
    let _ = fs.create("/wf", 0o644);
    let mut acked: u64 = 0;
    for i in 0..40u64 {
        if fs.write_at_path("/wf", i * 100, &[7u8; 100]).is_ok() {
            acked = acked.max(i * 100 + 100);
        }
    }
    if let Ok(m) = fs.stat("/wf") {
        assert!(
            m.size <= acked.max(0) || acked == 0,
            "reported size {} exceeds acknowledged bytes {}",
            m.size,
            acked
        );
    }
}
