//! Write-back buffer property test: random interleavings of buffered
//! writes, reads, flushes, truncates, and size probes on a single
//! handle must be indistinguishable from a plain `Vec<u8>`.
//!
//! This is the correctness net over the handle's write-back protocol:
//! sequential absorb, in-run overwrite, displacement flushes, the
//! read-your-buffered-writes overlay, truncate's pre-flush, and the
//! cached-size bookkeeping all funnel through here. The buffer is kept
//! deliberately small (8 KiB) relative to the offset range so random
//! sequences constantly displace and re-fill the run.

use gekkofs::{Cluster, ClusterConfig, OpenFlags};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum HOp {
    /// pwrite at a random offset — usually disjoint from the buffered
    /// run, forcing a displacement flush.
    Write { offset: u16, len: u8, seed: u8 },
    /// pwrite exactly at EOF — the sequential-absorb fast path.
    Append { len: u8, seed: u8 },
    /// pread through the overlay: buffered bytes must be visible.
    Read { offset: u16, len: u16 },
    /// Forced flush; afterwards a *fresh* handle must see everything.
    Flush,
    /// Truncate (either direction) — pre-flushes the buffered run.
    Truncate { size: u16 },
    /// Cached size probe — no RPC, must still equal the model's len.
    Size,
}

fn op_strategy() -> impl Strategy<Value = HOp> {
    prop_oneof![
        3 => (any::<u16>(), any::<u8>(), any::<u8>())
            .prop_map(|(offset, len, seed)| HOp::Write { offset: offset % 20_000, len, seed }),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(len, seed)| HOp::Append { len, seed }),
        3 => (any::<u16>(), any::<u16>())
            .prop_map(|(offset, len)| HOp::Read { offset: offset % 25_000, len: len % 25_000 }),
        1 => Just(HOp::Flush),
        1 => any::<u16>().prop_map(|size| HOp::Truncate { size: size % 25_000 }),
        2 => Just(HOp::Size),
    ]
}

fn pattern(seed: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| (seed as usize).wrapping_add(i.wrapping_mul(37)) as u8).collect()
}

fn model_write(contents: &mut Vec<u8>, offset: usize, data: &[u8]) {
    if data.is_empty() {
        return;
    }
    let end = offset + data.len();
    if contents.len() < end {
        contents.resize(end, 0);
    }
    contents[offset..end].copy_from_slice(data);
}

fn model_read(contents: &[u8], offset: usize, len: usize) -> Vec<u8> {
    let start = offset.min(contents.len());
    let end = (offset + len).min(contents.len());
    contents[start..end].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, // each case deploys a whole cluster: keep the count sane
        .. ProptestConfig::default()
    })]

    #[test]
    fn buffered_handle_agrees_with_vec_model(ops in prop::collection::vec(op_strategy(), 1..48)) {
        // Small chunks force striping; a small buffer forces constant
        // displacement; write-back on is the entire point.
        let cluster = Cluster::deploy(
            ClusterConfig::new(2)
                .with_chunk_size(4096)
                .with_write_back(8 * 1024),
        )
        .unwrap();
        let fs = cluster.mount().unwrap();
        let h = fs.open_handle("/wb/prop", OpenFlags::RDWR.with_create()).unwrap();
        let mut model: Vec<u8> = Vec::new();

        for op in &ops {
            match op {
                HOp::Write { offset, len, seed } => {
                    let data = pattern(*seed, *len as usize);
                    h.pwrite(*offset as u64, &data).unwrap();
                    model_write(&mut model, *offset as usize, &data);
                }
                HOp::Append { len, seed } => {
                    let data = pattern(*seed, *len as usize);
                    h.pwrite(model.len() as u64, &data).unwrap();
                    let at = model.len();
                    model_write(&mut model, at, &data);
                }
                HOp::Read { offset, len } => {
                    let got = h.pread(*offset as u64, *len as usize).unwrap();
                    let expect = model_read(&model, *offset as usize, *len as usize);
                    prop_assert_eq!(&expect, &got, "read @{}+{}", offset, len);
                }
                HOp::Flush => {
                    h.flush().unwrap();
                    // Everything buffered so far is now durable: a fresh
                    // handle (fresh open-time stat, empty buffer) must
                    // see the model bit-exact.
                    let fresh = fs.open_handle("/wb/prop", OpenFlags::RDONLY).unwrap();
                    prop_assert_eq!(fresh.size(), model.len() as u64, "size after flush");
                    let got = fresh.pread(0, model.len().max(1)).unwrap();
                    prop_assert_eq!(&model, &got, "contents after flush");
                }
                HOp::Truncate { size } => {
                    h.truncate(*size as u64).unwrap();
                    model.resize(*size as usize, 0);
                }
                HOp::Size => {
                    prop_assert_eq!(h.size(), model.len() as u64, "cached size");
                }
            }
        }

        // Close forces the final flush; the durable state must equal
        // the model exactly — no silently lost buffered tail.
        h.close().unwrap();
        prop_assert_eq!(fs.stat("/wb/prop").unwrap().size, model.len() as u64);
        let fresh = fs.open_handle("/wb/prop", OpenFlags::RDONLY).unwrap();
        let got = fresh.pread(0, model.len().max(1)).unwrap();
        prop_assert_eq!(&model, &got, "final durable contents");
        cluster.shutdown();
    }
}
