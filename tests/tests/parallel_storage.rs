//! Parallel-storage stress: many clients × many chunks against
//! disk-backed daemons, with and without seeded chaos.
//!
//! This is the integration-level check on the chunk task engine and
//! the fd-cached positional storage layer: concurrent striped I/O from
//! many mounts must never interleave lossily, and the data-path
//! counters (fd cache, coalescing, task engine) must be visible in
//! `cluster_stats`. The chaos variant reuses the fixed seeds from the
//! chaos suite so a red run reproduces exactly; CI runs it in release
//! mode (`--ignored`) where timing actually exercises the contended
//! paths.

use gekkofs::{ClusterConfig, Daemon, DaemonConfig, GekkoClient, OpenFlags, RetryConfig};
use gkfs_integration::payload;
use gkfs_rpc::{ChaosConfig, ChaosEndpoint, Endpoint, EndpointOptions};
use std::sync::Arc;
use std::time::Duration;

/// Same fixed fault streams as tests/tests/chaos.rs.
const SEEDS: [u64; 3] = [0x5EED_0001, 0x5EED_0002, 0x5EED_0003];

const CHUNK: u64 = 64 * 1024;

fn disk_daemons(dir: &std::path::Path, n: usize) -> Vec<Arc<Daemon>> {
    (0..n)
        .map(|i| {
            Daemon::spawn(DaemonConfig {
                root_dir: Some(dir.join(format!("d{i}"))),
                ..DaemonConfig::default()
            })
            .unwrap()
        })
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gkfs-parstore-{tag}-{}", std::process::id()))
}

/// Striped writes from concurrent mounts to a file-backed cluster:
/// every byte read back must match, and the storage layer's fd cache
/// must have been exercised. Debug-affordable sizes; the release
/// stress below scales the same shape up under chaos.
#[test]
fn parallel_clients_on_disk_backed_storage() {
    let dir = temp_dir("clean");
    let _ = std::fs::remove_dir_all(&dir);
    let ds = disk_daemons(&dir, 2);
    let config = ClusterConfig::new(2).with_chunk_size(CHUNK);
    let clients = 4usize;
    let chunks_per_file = 8u64;

    // Parent directory up front so the namespace stays fsck-walkable.
    {
        let eps: Vec<Arc<dyn Endpoint>> = ds.iter().map(|d| d.endpoint()).collect();
        let fs = GekkoClient::mount(eps, &config).unwrap();
        fs.mkdir("/stress", 0o755).unwrap();
    }

    std::thread::scope(|s| {
        for c in 0..clients {
            let ds = &ds;
            let config = &config;
            s.spawn(move || {
                let eps: Vec<Arc<dyn Endpoint>> = ds.iter().map(|d| d.endpoint()).collect();
                let fs = GekkoClient::mount(eps, config).unwrap();
                let p = format!("/stress/f{c}");
                let data = payload((chunks_per_file * CHUNK) as usize, c as u64 + 1);
                let h = fs
                    .open_handle(&p, OpenFlags::RDWR.with_create().with_exclusive())
                    .unwrap();
                h.pwrite(0, &data).unwrap();
                // Immediately read back through the same handle while
                // the other clients are still writing.
                let back = h.pread(0, data.len()).unwrap();
                assert_eq!(back, data, "client {c}: lossy interleaving");
                h.close().unwrap();
            });
        }
    });

    // A fresh mount sees every file, and the data-path counters are
    // plumbed all the way through the stats RPC.
    let eps: Vec<Arc<dyn Endpoint>> = ds.iter().map(|d| d.endpoint()).collect();
    let fs = GekkoClient::mount(eps, &config).unwrap();
    for c in 0..clients {
        let p = format!("/stress/f{c}");
        let data = payload((chunks_per_file * CHUNK) as usize, c as u64 + 1);
        let h = fs.open_handle(&p, OpenFlags::RDONLY).unwrap();
        assert_eq!(h.pread(0, data.len()).unwrap(), data);
        h.close().unwrap();
    }
    let stats = fs.cluster_stats().unwrap();
    let touches: u64 = stats.iter().map(|s| s.fd_cache_hits + s.fd_cache_misses).sum();
    assert!(touches > 0, "file backend never touched the fd cache");
    let hits: u64 = stats.iter().map(|s| s.fd_cache_hits).sum();
    assert!(hits > 0, "re-reading the same chunks must hit cached fds");

    for d in &ds {
        d.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Release-mode stress: clients × chunks × chaos seeds. Light chaos
/// plus the retry layer means most striped transfers complete; every
/// one that reports success must read back bit-exact, and the
/// namespace must be fsck-clean once the chaos stops.
#[test]
#[ignore = "release-mode stress; CI runs it via --ignored"]
fn parallel_storage_stress_under_chaos_seeds() {
    for seed in SEEDS {
        let dir = temp_dir(&format!("chaos-{seed:x}"));
        let _ = std::fs::remove_dir_all(&dir);
        let ds = disk_daemons(&dir, 3);
        let injectors: Vec<Arc<ChaosEndpoint>> = ds
            .iter()
            .enumerate()
            .map(|(node, d)| {
                let ep = d.endpoint_with(
                    EndpointOptions::new().with_timeout(Duration::from_millis(150)),
                );
                ChaosEndpoint::new(ep, ChaosConfig::light(seed ^ ((node as u64) << 32)))
            })
            .collect();
        let retry = RetryConfig {
            max_attempts: 6,
            base_backoff_ms: 2,
            max_backoff_ms: 20,
            jitter_seed: 0x6b67_7330,
            breaker_threshold: 0,
            breaker_cooldown_ms: 50,
            op_deadline_ms: 3_000,
        };
        let config = ClusterConfig::new(3)
            .with_chunk_size(CHUNK)
            .with_retry(retry);

        // Create the working directory over clean endpoints before the
        // chaos starts: files must stay reachable from "/" or the final
        // fsck would (correctly) flag their chunks as orphans.
        {
            let eps: Vec<Arc<dyn Endpoint>> = ds.iter().map(|d| d.endpoint()).collect();
            let fs = GekkoClient::mount(eps, &ClusterConfig::new(3).with_chunk_size(CHUNK))
                .unwrap();
            fs.mkdir("/chaos-stress", 0o755).unwrap();
        }

        let clients = 8usize;
        let chunks_per_file = 16u64; // 1 MiB striped per client
        let verified = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for c in 0..clients {
                let injectors = &injectors;
                let config = &config;
                let verified = &verified;
                s.spawn(move || {
                    let eps: Vec<Arc<dyn Endpoint>> = injectors
                        .iter()
                        .map(|e| e.clone() as Arc<dyn Endpoint>)
                        .collect();
                    let Ok(fs) = GekkoClient::mount(eps, config) else {
                        return; // mount lost to chaos: acceptable
                    };
                    let p = format!("/chaos-stress/f{c}");
                    let data = payload((chunks_per_file * CHUNK) as usize, seed ^ c as u64);
                    let Ok(h) =
                        fs.open_handle(&p, OpenFlags::RDWR.with_create().with_exclusive())
                    else {
                        return;
                    };
                    if h.pwrite(0, &data).is_err() {
                        return; // failed loudly: fine under chaos
                    }
                    // A write that claimed success must read back
                    // bit-exact — chaos may delay or fail loudly,
                    // never corrupt.
                    if let Ok(back) = h.pread(0, data.len()) {
                        assert_eq!(back, data, "seed {seed:#x}: silent corruption on {p}");
                        verified.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });

        let injected: u64 = injectors.iter().map(|i| i.stats().total()).sum();
        assert!(injected > 0, "seed {seed:#x}: chaos never fired");
        assert!(
            verified.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "seed {seed:#x}: light chaos should not defeat every transfer"
        );

        // Post-chaos: clean endpoints, consistent namespace.
        let clean: Vec<Arc<dyn Endpoint>> = ds.iter().map(|d| d.endpoint()).collect();
        let fs = GekkoClient::mount(clean, &ClusterConfig::new(3).with_chunk_size(CHUNK)).unwrap();
        let report = fs.fsck().unwrap();
        assert!(
            report.is_clean(),
            "seed {seed:#x}: post-chaos fsck not clean: {report:?}"
        );
        for d in &ds {
            d.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
