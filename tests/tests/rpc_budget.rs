//! Client RPC-count regression gate (wired into `scripts/ci.sh`).
//!
//! The handle redesign's acceptance bar is stated in RPCs, not
//! wall-clock: wall-clock on a shared-core in-process cluster is
//! noisy, but every RPC the client issues is counted exactly
//! ([`gekkofs::ClientStats::rpcs_issued`], shared with the daemon
//! ring). These tests pin the budget so a future change that quietly
//! re-introduces a per-op round trip (an extra stat on open, a
//! size-update per buffered write, a re-resolve per read) turns CI red
//! with a number attached.
//!
//! Baseline: the pre-handle synchronous protocol, itemized per
//! mdtest-small file on a 2-node cluster with the payload issued as
//! 8 x 512 B sequential writes (the paper's §I "small I/O requests"):
//!
//! | op                | RPCs | why                                   |
//! |-------------------|------|---------------------------------------|
//! | create            |  1   | meta insert at the owner              |
//! | 8 x write         | 16   | chunk write + synchronous size update |
//! | stat              |  1   | meta fetch                            |
//! | unlink            |  3   | meta remove + 2-node chunk broadcast  |
//! | **total**         | **21**                                       |
//!
//! The handle path must do the same chain in one create, one coalesced
//! flush (chunk write + size update), one stat and one unlink
//! broadcast: ~7 per file. The gate asserts the >= 2x acceptance bound
//! against the itemized baseline *and* a tighter absolute budget so
//! regressions inside the 2x headroom still trip.

use gekkofs::{Cluster, ClusterConfig, OpenFlags};
use gkfs_workloads::{run_mdtest_small, MdtestSmallConfig};
use std::sync::atomic::Ordering;

/// Pre-handle protocol cost per mdtest-small file (itemized above).
const OLD_PROTOCOL_RPCS_PER_FILE: f64 = 21.0;

/// Absolute budget for the handle path: ~7 structural RPCs per file
/// plus headroom for the run's amortized setup (mkdir) — NOT enough
/// headroom to hide a reintroduced per-op round trip (+1 per stat or
/// per flush would blow it).
const HANDLE_RPCS_PER_FILE_BUDGET: f64 = 8.0;

#[test]
fn mdtest_small_rpc_budget_holds() {
    let cluster = Cluster::deploy(
        ClusterConfig::new(2)
            .with_chunk_size(64 * 1024)
            .with_write_back(64 * 1024),
    )
    .unwrap();
    let cfg = MdtestSmallConfig {
        processes: 2,
        files_per_process: 100,
        file_size: 4 * 1024,
        transfer_size: 512,
        work_dir: "/rpc-gate".into(),
    };
    let r = run_mdtest_small(&cluster, &cfg).unwrap();
    cluster.shutdown();

    assert!(r.wb_flushes > 0, "write-back never engaged");
    let per_file = r.rpcs_per_file();
    assert!(
        per_file * 2.0 <= OLD_PROTOCOL_RPCS_PER_FILE,
        "acceptance bound: {per_file:.2} RPCs/file is not 2x under the \
         old protocol's {OLD_PROTOCOL_RPCS_PER_FILE}"
    );
    assert!(
        per_file <= HANDLE_RPCS_PER_FILE_BUDGET,
        "regression: {per_file:.2} RPCs/file exceeds the {HANDLE_RPCS_PER_FILE_BUDGET} budget \
         ({} RPCs / {} files)",
        r.rpcs_issued,
        r.total_files
    );
}

/// 8 KiB sequential IOR-style writes: with a 64 KiB write-back buffer
/// the client must issue at least 2x fewer RPCs than write-through —
/// measured, not modeled, by running the same write stream against two
/// clusters that differ only in the buffer.
#[test]
fn ior_8k_sequential_write_rpc_budget_holds() {
    let writes = 256usize; // 2 MiB total, 8 KiB at a time
    let run = |write_back: u64| -> u64 {
        let cluster = Cluster::deploy(
            ClusterConfig::new(2)
                .with_chunk_size(512 * 1024)
                .with_write_back(write_back),
        )
        .unwrap();
        let fs = cluster.mount().unwrap();
        let h = fs
            .open_handle("/ior8k", OpenFlags::WRONLY.with_create().with_exclusive())
            .unwrap();
        let base = fs.stats().rpcs_issued.load(Ordering::Relaxed);
        let buf = vec![0xA5u8; 8 * 1024];
        for i in 0..writes {
            h.pwrite((i * buf.len()) as u64, &buf).unwrap();
        }
        h.close().unwrap();
        let issued = fs.stats().rpcs_issued.load(Ordering::Relaxed) - base;
        cluster.shutdown();
        issued
    };

    let through = run(0);
    let buffered = run(64 * 1024);
    assert!(
        buffered * 2 <= through,
        "8 KiB sequential writes must issue >= 2x fewer RPCs with \
         write-back: {buffered} vs {through}"
    );
    // Structural expectation: one coalesced flush (chunk write + size
    // update) per 64 KiB run => ~0.25 RPCs per 8 KiB write.
    assert!(
        (buffered as f64) / (writes as f64) <= 1.0,
        "buffered path re-grew a per-write round trip: {buffered} RPCs / {writes} writes"
    );
}
