//! Cross-validation: the simulator and the real file system must agree
//! on the paper's *qualitative* claims at scales where both can run.
//!
//! The simulator owns the 512-node numbers; these tests pin its
//! behaviour to the real implementation where they overlap — the same
//! workload shape produces the same *direction* and *relative*
//! ordering of results.

use gekkofs::{Cluster, ClusterConfig};
use gkfs_sim::{
    sim_ior, sim_mdtest, IorPhase, IorSimConfig, LustreDirMode, MdtestPhase, MdtestSimConfig,
    SharedFileMode, SystemKind,
};
use gkfs_workloads::{run_ior, run_mdtest, IorConfig, MdtestConfig};

#[test]
fn scaling_mechanism_validated_spreading_real_throughput_sim() {
    // The mechanism behind Fig. 2's linear scaling is that load
    // spreads uniformly over daemons with no shared bottleneck. The
    // in-process cluster shares this machine's cores, so *wall-clock*
    // scaling cannot show here (all "nodes" compete for the same CPUs);
    // what must show is (a) the spread itself on the real FS, (b) no
    // throughput collapse as daemons are added, and (c) wall-clock
    // scaling in the calibrated simulator where each node has its own
    // resources.
    let cluster = Cluster::deploy(ClusterConfig::new(8)).unwrap();
    let r = run_mdtest(
        &cluster,
        &MdtestConfig {
            processes: 8,
            files_per_process: 500,
            work_dir: "/v".into(),
            unique_dir: false,
        },
    )
    .unwrap();
    // (a) during the stat phase the files existed; verify placement
    // balance via daemon KV put counts (files were spread).
    let fs = cluster.mount().unwrap();
    let stats = fs.cluster_stats().unwrap();
    let puts: Vec<u64> = stats.iter().map(|s| s.kv_puts).collect();
    let max = *puts.iter().max().unwrap() as f64;
    let min = *puts.iter().min().unwrap() as f64;
    assert!(
        max / min.max(1.0) < 2.0,
        "metadata load must balance across daemons: {puts:?}"
    );
    // Lax floor: this is a liveness check, not a perf bar — CI boxes
    // share cores with the whole test run and absolute rates swing 10x.
    assert!(r.creates_per_sec() > 1_000.0, "sanity: real FS is functional");
    cluster.shutdown();

    // (b) adding daemons must not collapse throughput.
    let cluster1 = Cluster::deploy(ClusterConfig::new(1)).unwrap();
    let r1 = run_mdtest(
        &cluster1,
        &MdtestConfig {
            processes: 8,
            files_per_process: 500,
            work_dir: "/v".into(),
            unique_dir: false,
        },
    )
    .unwrap();
    cluster1.shutdown();
    assert!(
        r.creates_per_sec() > r1.creates_per_sec() * 0.5,
        "8 nodes {:.0} vs 1 node {:.0}",
        r.creates_per_sec(),
        r1.creates_per_sec()
    );

    // (c) with per-node resources (the simulator), scaling is linear.
    let sim = |nodes: usize| {
        let mut cfg = MdtestSimConfig::new(nodes, MdtestPhase::Create, SystemKind::GekkoFS);
        cfg.files_per_process = 400;
        sim_mdtest(&cfg).ops_per_sec()
    };
    let sim_1 = sim(1);
    let sim_4 = sim(4);
    assert!(sim_4 > sim_1 * 3.0, "sim: {sim_1:.0} -> {sim_4:.0}");
}

#[test]
fn both_show_create_faster_than_remove() {
    // mdtest ordering on the real FS...
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    let r = run_mdtest(
        &cluster,
        &MdtestConfig {
            processes: 8,
            files_per_process: 500,
            work_dir: "/o".into(),
            unique_dir: false,
        },
    )
    .unwrap();
    cluster.shutdown();
    assert!(
        r.stats_per_sec() > r.removes_per_sec(),
        "real: stat {:.0} should beat remove {:.0}",
        r.stats_per_sec(),
        r.removes_per_sec()
    );

    // ...matches the simulator's ordering (and the paper's Fig. 2:
    // stats fastest, removes slowest).
    let sim = |phase| {
        let mut cfg = MdtestSimConfig::new(8, phase, SystemKind::GekkoFS);
        cfg.files_per_process = 300;
        sim_mdtest(&cfg).ops_per_sec()
    };
    assert!(sim(MdtestPhase::Stat) > sim(MdtestPhase::Remove));
}

#[test]
fn both_show_large_transfers_beating_small() {
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    let run = |xfer: u64| {
        let r = run_ior(
            &cluster,
            &IorConfig {
                processes: 4,
                transfer_size: xfer,
                block_size: 4 * 1024 * 1024,
                file_per_process: true,
                random: false,
                work_dir: format!("/x{xfer}"),
            },
        )
        .unwrap();
        r.write_mib_per_sec()
    };
    let small = run(8 * 1024);
    let large = run(1024 * 1024);
    cluster.shutdown();
    assert!(large > small, "real: 1 MiB {large:.0} vs 8 KiB {small:.0}");

    let sim = |xfer: u64| {
        let mut cfg = IorSimConfig::new(4, IorPhase::Write, xfer);
        cfg.data_per_proc = 4 * 1024 * 1024;
        sim_ior(&cfg).mib_per_sec()
    };
    assert!(sim(1024 * 1024) > sim(8 * 1024), "sim ordering must match");
}

#[test]
fn simulated_figure2_endpoints_within_band() {
    // Hard numeric pins against the paper, with generous bands: these
    // are the values EXPERIMENTS.md reports.
    let endpoint = |phase, system| {
        let mut cfg = MdtestSimConfig::new(512, phase, system);
        cfg.files_per_process = 200;
        cfg.lustre_total_files = 80_000;
        sim_mdtest(&cfg).ops_per_sec()
    };
    let g_create = endpoint(MdtestPhase::Create, SystemKind::GekkoFS);
    let g_stat = endpoint(MdtestPhase::Stat, SystemKind::GekkoFS);
    let g_remove = endpoint(MdtestPhase::Remove, SystemKind::GekkoFS);
    assert!((38e6..54e6).contains(&g_create), "creates {g_create:.0} (paper ~46M)");
    assert!((36e6..52e6).contains(&g_stat), "stats {g_stat:.0} (paper ~44M)");
    assert!((17e6..27e6).contains(&g_remove), "removes {g_remove:.0} (paper ~22M)");

    let l_create = endpoint(
        MdtestPhase::Create,
        SystemKind::Lustre(LustreDirMode::SingleDir),
    );
    let ratio = g_create / l_create;
    assert!(
        (900.0..2000.0).contains(&ratio),
        "create speedup {ratio:.0} (paper ~1405x)"
    );
}

#[test]
fn simulated_shared_file_matches_paper_story() {
    let run = |mode| {
        let mut cfg = IorSimConfig::new(64, IorPhase::Write, 8 * 1024);
        cfg.mode = mode;
        cfg.data_per_proc = 2 * 1024 * 1024;
        sim_ior(&cfg).iops()
    };
    let nocache = run(SharedFileMode::SharedNoCache);
    let cached = run(SharedFileMode::SharedCached { window: 64 });
    let fpp = run(SharedFileMode::FilePerProcess);
    assert!((100e3..200e3).contains(&nocache), "ceiling {nocache:.0} (paper ~150K)");
    assert!(cached > fpp * 0.7, "cached {cached:.0} ~ fpp {fpp:.0}");
}

#[test]
fn real_size_cache_reduces_update_rpcs() {
    // The mechanism behind the §IV-B fix, measured on the real client:
    // with a window of W the number of size-update RPCs drops ~W-fold.
    let count_updates = |window: usize| {
        let cluster =
            Cluster::deploy(ClusterConfig::new(2).with_size_cache(window)).unwrap();
        let fs = cluster.mount().unwrap();
        let h = fs
            .open_handle("/w", gekkofs::OpenFlags::WRONLY.with_create())
            .unwrap();
        for i in 0..256u64 {
            h.pwrite(i * 64, &[1u8; 64]).unwrap();
        }
        h.close().unwrap();
        fs.flush_all().unwrap();
        let sent = fs
            .stats()
            .size_updates_sent
            .load(std::sync::atomic::Ordering::Relaxed);
        cluster.shutdown();
        sent
    };
    let sync = count_updates(0);
    let cached = count_updates(32);
    assert_eq!(sync, 256, "synchronous mode sends one update per write");
    assert!(
        cached <= 256 / 32 + 1,
        "window 32 must coalesce ~32x: sent {cached}"
    );
}
