//! Data-plane copy-bytes regression gate (wired into `scripts/ci.sh`).
//!
//! The zero-copy data plane's acceptance bar: a scatter-gather
//! `ReadChunks` reply over **real TCP** moves bytes fd → per-chunk
//! buffer → socket with no assembly copy. The daemon counts every byte
//! it has to memmove while building a read reply
//! (`DaemonStats::read_reply_copy_bytes` — reply compaction in the
//! batch engine); for full-data dense reads that counter must be
//! exactly zero, and this gate turns CI red if an intermediate
//! concatenation `Vec` (or any per-reply shuffle) sneaks back in.
//!
//! Short reads (EOF inside the batch window) legitimately compact, so
//! the gate also checks the counter *moves* there — proving the zero
//! on the hot path is a measured zero, not a dead counter.

use gekkofs::{OpenFlags, TcpCluster};
use gkfs_common::ClusterConfig;

const CHUNK: u64 = 64 * 1024;

#[test]
fn tcp_scatter_gather_read_replies_copy_zero_bytes() {
    let cluster = TcpCluster::deploy(
        ClusterConfig::new(2).with_chunk_size(CHUNK),
    )
    .unwrap();
    let fs = cluster.mount().unwrap();

    // 16 chunks of payload through a handle, flushed to the daemons.
    let h = fs
        .open_handle("/gate/full", OpenFlags::RDWR.with_create())
        .unwrap();
    let data: Vec<u8> = (0..16 * CHUNK).map(|i| (i % 251) as u8).collect();
    h.pwrite(0, &data).unwrap();
    h.flush().unwrap();

    // Full-data scatter-gather reads: every byte the daemons return is
    // exactly the byte count requested, chunk-aligned and not — the
    // reply is pure gather, nothing may be compacted or re-assembled.
    for (off, len) in [
        (0u64, 16 * CHUNK),          // whole file, 16-chunk batch
        (0, CHUNK),                  // single chunk
        (3 * CHUNK + 17, 4 * CHUNK), // unaligned window inside the file
    ] {
        let got = h.pread(off, len as usize).unwrap();
        assert_eq!(got.len() as u64, len);
        assert_eq!(got[..], data[off as usize..(off + len) as usize]);
    }
    h.close().unwrap();

    let copied: u64 = fs
        .cluster_stats()
        .unwrap()
        .iter()
        .map(|s| s.read_reply_copy_bytes)
        .sum();
    assert_eq!(
        copied, 0,
        "scatter-gather read replies must not copy: {copied} bytes re-assembled"
    );

    cluster.shutdown();

    // Control: a hole in the middle of a batch forces reply
    // compaction (later chunks' bytes move down over the gap), so the
    // counter must move — proving the zero above is a measured zero,
    // not a dead counter. One node so the whole sparse batch lands in
    // a single daemon-side read.
    let cluster = TcpCluster::deploy(ClusterConfig::new(1).with_chunk_size(CHUNK)).unwrap();
    let fs = cluster.mount().unwrap();
    let h = fs
        .open_handle("/gate/sparse", OpenFlags::RDWR.with_create())
        .unwrap();
    h.pwrite(0, &data[..CHUNK as usize]).unwrap(); // chunk 0: data
    h.pwrite(3 * CHUNK, &data[..CHUNK as usize]).unwrap(); // chunks 1-2: hole
    h.flush().unwrap();
    let got = h.pread(0, (4 * CHUNK) as usize).unwrap();
    assert_eq!(got.len() as u64, 4 * CHUNK);
    assert_eq!(got[CHUNK as usize..3 * CHUNK as usize], vec![0u8; 2 * CHUNK as usize]);
    h.close().unwrap();
    let compacted: u64 = fs
        .cluster_stats()
        .unwrap()
        .iter()
        .map(|s| s.read_reply_copy_bytes)
        .sum();
    assert!(
        compacted > 0,
        "sparse-read control must exercise compaction (counter is live)"
    );

    cluster.shutdown();
}
