//! # gkfs-integration — cross-crate integration tests
//!
//! The tests live in `tests/` and exercise the full stack: client →
//! RPC (both transports) → daemon → KV store / chunk storage, plus
//! cross-validation of the simulator against the real file system.
//!
//! This lib target exists only to give the integration-test crate a
//! compilation unit; shared helpers live here.

use gekkofs::{Cluster, ClusterConfig, Result};

/// Deploy a small in-process cluster with a given chunk size, for
/// tests that need wide striping with small data.
pub fn small_chunk_cluster(nodes: usize, chunk_size: u64) -> Result<Cluster> {
    Cluster::deploy(ClusterConfig::new(nodes).with_chunk_size(chunk_size))
}

/// Deterministic pseudo-random payload.
pub fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xFF) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic_and_varied() {
        assert_eq!(payload(64, 1), payload(64, 1));
        assert_ne!(payload(64, 1), payload(64, 2));
        let p = payload(4096, 3);
        let distinct: std::collections::HashSet<u8> = p.iter().copied().collect();
        assert!(distinct.len() > 100, "payload should look random");
    }
}
