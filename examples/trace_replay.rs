//! Replay an application I/O trace against an in-process cluster —
//! the evaluation style real burst-buffer deployments use (capture an
//! application's I/O once, replay it against candidate storage
//! configurations).
//!
//! ```sh
//! cargo run --release -p gkfs-examples --bin trace_replay
//! ```

use gekkofs::{Cluster, ClusterConfig};
use gkfs_workloads::trace::{checkpoint_trace, format_trace, parse_trace};
use gkfs_workloads::replay_trace;

fn main() -> gekkofs::Result<()> {
    // A hand-written trace: a producer/consumer handoff with barriers.
    let text = "\
# producer (rank 0) emits two result files; consumers read them
0 mkdir /results
* barrier
0 create /results/a.dat
0 write  /results/a.dat 0 262144
0 create /results/b.dat
0 write  /results/b.dat 0 131072
* barrier
1 read   /results/a.dat 0 262144
2 read   /results/b.dat 0 131072
* barrier
0 readdir /results
";
    let trace = parse_trace(text)?;
    let cluster = Cluster::deploy(ClusterConfig::new(4).with_chunk_size(64 * 1024))?;
    let r = replay_trace(|| cluster.mount(), 3, &trace)?;
    println!(
        "hand-written trace: {} ops, {} B written, {} B read, {:?}",
        r.ops_executed, r.bytes_written, r.bytes_read, r.elapsed
    );
    cluster.shutdown();

    // A generated N-N checkpoint/restart trace — print a slice, then
    // replay it under two chunk sizes to compare.
    let trace = checkpoint_trace(8, 4, 512 * 1024);
    println!("\ngenerated checkpoint trace ({} entries), head:", trace.len());
    for line in format_trace(&trace).lines().take(5) {
        println!("  {line}");
    }
    for chunk_kib in [64u64, 512] {
        let cluster =
            Cluster::deploy(ClusterConfig::new(4).with_chunk_size(chunk_kib * 1024))?;
        let r = replay_trace(|| cluster.mount(), 8, &trace)?;
        println!(
            "  chunk {chunk_kib:>4} KiB: {:.0} ops/s, {} B written",
            r.ops_per_sec(),
            r.bytes_written
        );
        cluster.shutdown();
    }
    Ok(())
}
