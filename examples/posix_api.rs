//! The preload-style C ABI: what an intercepted application would
//! exercise. This example drives the `extern "C"` surface directly —
//! the same calls a `dlsym`-based `LD_PRELOAD` shim forwards.
//!
//! ```sh
//! cargo run -p gkfs-examples --bin posix_api
//! ```

use gekkofs::{Cluster, ClusterConfig};
use gkfs_posix::*;
use std::ffi::CString;
use std::sync::Arc;

const O_RDWR: i32 = 0o2;
const O_CREAT: i32 = 0o100;

fn main() -> gekkofs::Result<()> {
    // The preload library's constructor: deploy/attach and install the
    // process-wide client.
    let cluster = Cluster::deploy(ClusterConfig::new(4))?;
    install_client(Arc::new(cluster.mount()?));

    unsafe {
        let path = CString::new("/app/output.bin").unwrap();

        // The application thinks it is calling open(2)/write(2)/...
        let fd = gkfs_open(path.as_ptr(), O_CREAT | O_RDWR, 0o644);
        assert!(fd >= 100_000, "GekkoFS descriptors live above the kernel's");
        println!("open -> fd {fd} (gkfs_owns_fd = {})", gkfs_owns_fd(fd));

        let data = b"application data via C ABI";
        let n = gkfs_write(fd, data.as_ptr(), data.len());
        println!("write -> {n} bytes");

        let pos = gkfs_lseek(fd, 0, 0 /* SEEK_SET */);
        println!("lseek -> {pos}");

        let mut buf = [0u8; 64];
        let n = gkfs_read(fd, buf.as_mut_ptr(), buf.len());
        println!(
            "read -> {n} bytes: {:?}",
            String::from_utf8_lossy(&buf[..n as usize])
        );

        let mut st = GkfsStat::default();
        gkfs_stat(path.as_ptr(), &mut st);
        println!("stat -> size {} mode {:o}", st.size, st.mode);

        // The POSIX features GekkoFS deliberately drops fail with
        // proper errnos rather than surprising the application.
        let to = CString::new("/app/renamed.bin").unwrap();
        let r = gkfs_rename(path.as_ptr(), to.as_ptr());
        println!("rename -> {r} (errno {} = EOPNOTSUPP)", gkfs_errno());

        gkfs_close(fd);
        gkfs_unlink(path.as_ptr());
    }

    uninstall_client();
    cluster.shutdown();
    Ok(())
}
