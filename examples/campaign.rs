//! The "campaign" use case from §I: GekkoFS is usually job-temporal,
//! but *"it can be used ... in longer-term use cases, e.g., campaigns"*
//! — a sequence of jobs sharing one scratch namespace whose daemons
//! restart between jobs but keep their node-local state.
//!
//! ```sh
//! cargo run -p gkfs-examples --bin campaign
//! ```

use gekkofs::{Cluster, ClusterConfig, DaemonConfig, OpenFlags};
use std::path::Path;

fn deploy(root: &Path) -> gekkofs::Result<Cluster> {
    Cluster::deploy_with(ClusterConfig::new(3), |n| DaemonConfig {
        root_dir: Some(root.join(format!("node-{n}"))),
        kv_wal: true,
        ..DaemonConfig::default()
    })
}

fn main() -> gekkofs::Result<()> {
    let root = std::env::temp_dir().join(format!("gkfs-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // ---- Job 1: simulation produces checkpoints -------------------
    {
        let cluster = deploy(&root)?;
        let fs = cluster.mount()?;
        fs.mkdir("/campaign", 0o755)?;
        for step in 0..3 {
            let path = format!("/campaign/ckpt-{step:03}");
            let h = fs.open_handle(&path, OpenFlags::WRONLY.with_create().with_exclusive())?;
            let data: Vec<u8> = (0..200_000u32).map(|i| (i + step) as u8).collect();
            h.pwrite(0, &data)?;
            h.close()?;
        }
        println!("job 1 wrote {} checkpoints", fs.readdir("/campaign")?.len());
        cluster.shutdown(); // job ends, daemons stop
    }

    // ---- Job 2 (later, same campaign): analysis reads them --------
    {
        let cluster = deploy(&root)?; // daemons restart over the same roots
        let fs = cluster.mount()?;
        let entries = fs.readdir("/campaign")?;
        println!("job 2 found {} checkpoints after daemon restart:", entries.len());
        for e in &entries {
            let h = fs.open_handle(&format!("/campaign/{}", e.name), OpenFlags::RDONLY)?;
            let data = h.pread(0, e.size as usize)?;
            println!("  {} -> {} bytes (first byte {})", e.name, data.len(), data[0]);
        }
        assert_eq!(entries.len(), 3, "campaign state must survive restarts");
        // The analysis job cleans up what it consumed.
        for e in entries {
            fs.unlink(&format!("/campaign/{}", e.name))?;
        }
        fs.rmdir("/campaign")?;
        cluster.shutdown();
    }

    // ---- Campaign over: reclaim the node-local space --------------
    std::fs::remove_dir_all(&root).ok();
    println!("campaign finished; node-local scratch reclaimed");
    Ok(())
}
