//! Real sockets: deploy daemons on loopback TCP ports and mount a
//! client over the wire — the multi-machine deployment path, minus the
//! machines.
//!
//! ```sh
//! cargo run -p gkfs-examples --bin tcp_cluster
//! ```

use gekkofs::cluster::TcpCluster;
use gekkofs::{ClusterConfig, OpenFlags};

fn main() -> gekkofs::Result<()> {
    let config = ClusterConfig::new(3);
    let cluster = TcpCluster::deploy(config.clone())?;
    println!("daemons listening on:");
    for (i, addr) in cluster.addrs().iter().enumerate() {
        println!("  node {i}: {addr}");
    }

    // A "remote" client: all it needs is the address list and the
    // shared cluster config (the hosts file of a real deployment).
    let fs = TcpCluster::mount_remote(cluster.addrs(), &config)?;

    fs.mkdir("/wire", 0o755)?;
    let payload: Vec<u8> = (0..2_000_000u32).map(|i| (i % 251) as u8).collect();
    let h = fs.open_handle("/wire/blob", OpenFlags::RDWR.with_create())?;
    h.pwrite(0, &payload)?;
    println!(
        "wrote {} bytes over TCP, striped across {} daemons",
        payload.len(),
        cluster.addrs().len()
    );

    let back = h.pread(0, payload.len())?;
    assert_eq!(back, payload, "data must round-trip bit-exact");
    println!("read back and verified {} bytes", back.len());
    h.close()?;

    // Show where the bytes physically went.
    for (i, stats) in fs.cluster_stats()?.iter().enumerate() {
        println!(
            "  node {i}: {} chunk bytes written, {} metadata entries",
            stats.storage_write_bytes, stats.meta_entries
        );
    }

    cluster.shutdown();
    Ok(())
}
