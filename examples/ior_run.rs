//! The paper's §IV-B data experiment at laptop scale: IOR-style bulk
//! I/O across transfer sizes, file-per-process vs shared file, with
//! and without the client size-update cache.
//!
//! ```sh
//! cargo run --release -p gkfs-examples --bin ior_run
//! ```

use gekkofs::{Cluster, ClusterConfig};
use gkfs_workloads::{run_ior, IorConfig};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn main() -> gekkofs::Result<()> {
    let cluster = Cluster::deploy(ClusterConfig::new(4))?;

    println!("== file-per-process, sequential (Fig. 3 shape) ==");
    println!("{:>8} {:>14} {:>14}", "xfer", "write MiB/s", "read MiB/s");
    for (xfer, label) in [(8 * KIB, "8k"), (64 * KIB, "64k"), (MIB, "1m")] {
        let cfg = IorConfig {
            processes: 8,
            transfer_size: xfer,
            block_size: 16 * MIB,
            file_per_process: true,
            random: false,
            work_dir: format!("/ior-{label}"),
        };
        let r = run_ior(&cluster, &cfg)?;
        println!(
            "{:>8} {:>14.0} {:>14.0}",
            label,
            r.write_mib_per_sec(),
            r.read_mib_per_sec()
        );
    }

    println!("\n== random vs sequential (8 KiB, §IV-B) ==");
    for random in [false, true] {
        let cfg = IorConfig {
            processes: 8,
            transfer_size: 8 * KIB,
            block_size: 8 * MIB,
            file_per_process: true,
            random,
            work_dir: format!("/ior-r{random}"),
        };
        let r = run_ior(&cluster, &cfg)?;
        println!(
            "  {}: write {:>8.0} MiB/s, read {:>8.0} MiB/s",
            if random { "random    " } else { "sequential" },
            r.write_mib_per_sec(),
            r.read_mib_per_sec()
        );
    }
    cluster.shutdown();

    println!("\n== shared file, without and with the size-update cache (§IV-B) ==");
    for window in [0usize, 32] {
        let cluster = Cluster::deploy(ClusterConfig::new(4).with_size_cache(window))?;
        let cfg = IorConfig {
            processes: 8,
            transfer_size: 8 * KIB,
            block_size: 4 * MIB,
            file_per_process: false,
            random: false,
            work_dir: "/ior-shared".into(),
        };
        let r = run_ior(&cluster, &cfg)?;
        println!(
            "  cache window {window:>3}: {:>9.0} write ops/s ({:>7.0} MiB/s)",
            r.write_iops(),
            r.write_mib_per_sec()
        );
        cluster.shutdown();
    }
    Ok(())
}
