//! The data-driven-science scenario from the paper's introduction:
//! ingest a corpus of many small files, then run shuffled
//! training-style epochs over it — the access pattern that motivates
//! GekkoFS in the first place ("large numbers of metadata operations
//! ... and small I/O requests", §I).
//!
//! ```sh
//! cargo run --release -p gkfs-examples --bin smallfile_ingest
//! ```

use gekkofs::{Cluster, ClusterConfig};
use gkfs_workloads::{run_smallfile, SmallFileConfig};

fn main() -> gekkofs::Result<()> {
    // The stat cache (§V "evaluate benefits of caching") pays off in
    // shuffled-read epochs that re-stat the same files; compare both.
    for (label, ttl_ms) in [("paper default (no caches)", 0u64), ("with stat cache", 60_000)] {
        let cluster = Cluster::deploy(
            ClusterConfig::new(4)
                .with_chunk_size(64 * 1024)
                .with_stat_cache_ttl_ms(ttl_ms),
        )?;
        let cfg = SmallFileConfig {
            processes: 6,
            files_per_process: 300,
            file_size: 16 * 1024,
            work_dir: "/corpus".into(),
        };
        let r = run_smallfile(&cluster, &cfg)?;
        println!("== {label} ==");
        println!(
            "  ingest: {} files ({} KiB each) at {:.0} files/s",
            r.total_files,
            cfg.file_size / 1024,
            r.ingest_files_per_sec()
        );
        println!(
            "  scan:   {} cross-rank shuffled reads at {:.0} MiB/s",
            r.total_files * cfg.processes,
            r.scan_mib_per_sec()
        );
        println!(
            "  ls -l:  {} entries in {:?} (one broadcast prefix scan)",
            r.listed_entries, r.list_time
        );
        cluster.shutdown();
    }
    Ok(())
}
