//! The paper's §IV-A metadata experiment at laptop scale: run the
//! mdtest workload (parallel create/stat/remove in a single directory)
//! against a real in-process cluster and print ops/s.
//!
//! ```sh
//! cargo run --release -p gkfs-examples --bin mdtest_run [nodes] [procs] [files]
//! ```

use gekkofs::{Cluster, ClusterConfig};
use gkfs_workloads::{run_mdtest, MdtestConfig};

fn main() -> gekkofs::Result<()> {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let procs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let files: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2_000);

    println!("mdtest: {nodes} nodes, {procs} ranks, {files} files/rank, single dir");
    let cluster = Cluster::deploy(ClusterConfig::new(nodes))?;

    let cfg = MdtestConfig {
        processes: procs,
        files_per_process: files,
        work_dir: "/mdtest".into(),
        unique_dir: false,
    };
    let r = run_mdtest(&cluster, &cfg)?;
    println!("  total files : {}", r.total_files);
    println!(
        "  create      : {:>10.0} ops/s  ({:?})",
        r.creates_per_sec(),
        r.create_time
    );
    println!(
        "  stat        : {:>10.0} ops/s  ({:?})",
        r.stats_per_sec(),
        r.stat_time
    );
    println!(
        "  remove      : {:>10.0} ops/s  ({:?})",
        r.removes_per_sec(),
        r.remove_time
    );

    // The same run with unique directories: for GekkoFS' flat
    // namespace this is conceptually identical (paper §IV-A), and the
    // numbers confirm it.
    let cfg_unique = MdtestConfig {
        unique_dir: true,
        work_dir: "/mdtest-unique".into(),
        ..cfg
    };
    let r = run_mdtest(&cluster, &cfg_unique)?;
    println!("unique-dir create: {:>10.0} ops/s (flat namespace: ~same)", r.creates_per_sec());

    cluster.shutdown();
    Ok(())
}
