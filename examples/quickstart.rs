//! Quickstart: deploy a 4-node GekkoFS namespace in-process and use it
//! like a (relaxed-POSIX) file system.
//!
//! ```sh
//! cargo run -p gkfs-examples --bin quickstart
//! ```

use gekkofs::{Cluster, ClusterConfig, OpenFlags, Whence};

fn main() -> gekkofs::Result<()> {
    // 1. Pool 4 nodes into one temporary namespace. On a real cluster
    //    each node runs `gkfs-daemon` against its local SSD; here the
    //    daemons share this process (same code, in-memory backends).
    let cluster = Cluster::deploy(ClusterConfig::new(4))?;
    println!(
        "deployed {} daemons in {:?}",
        cluster.nodes(),
        cluster.deploy_time()
    );

    // 2. Mount. Each application process gets its own client; all
    //    clients see one global namespace.
    let fs = cluster.mount()?;

    // 3. Files and directories.
    fs.mkdir("/results", 0o755)?;
    let fd = fs.open("/results/run-001.dat", OpenFlags::RDWR.with_create())?;
    fs.write(fd, b"step,energy\n")?;
    fs.write(fd, b"1,-42.17\n")?;
    fs.write(fd, b"2,-43.02\n")?;

    // Seek back and read everything.
    fs.lseek(fd, 0, Whence::Set)?;
    let contents = fs.read(fd, 1024)?;
    print!("{}", String::from_utf8_lossy(&contents));
    fs.close(fd)?;

    // 4. Metadata: strongly consistent per file.
    let meta = fs.stat("/results/run-001.dat")?;
    println!("size = {} bytes, mode = {:o}", meta.size, meta.mode);

    // 5. readdir is a broadcast prefix-scan over all daemons
    //    (eventually consistent, like `ls -l` in the paper).
    for entry in fs.readdir("/results")? {
        println!("  /results/{} ({:?})", entry.name, entry.kind);
    }

    // 6. Relaxed POSIX: rename is deliberately unsupported.
    match fs.rename("/results/run-001.dat", "/results/renamed.dat") {
        Err(e) => println!("rename refused as designed: {e}"),
        Ok(()) => unreachable!(),
    }

    // 7. Tear down — GekkoFS is a *temporary* file system; its life
    //    ends with the job.
    fs.unlink("/results/run-001.dat")?;
    fs.rmdir("/results")?;
    cluster.shutdown();
    println!("namespace gone; scratch space released");
    Ok(())
}
