#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (compile + run benches in test mode)"
cargo bench -p gkfs-bench --bench rpc -- --test

echo "ci: all green"
