#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gkfs-lint (concurrency & safety analyzer, all rules deny)"
# Run the analyzer before anything else: lock-hierarchy or safety
# violations should fail fast, without waiting for a full build.
cargo run -p gkfs-lint -- --deny-all

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (compile + run benches in test mode)"
cargo bench -p gkfs-bench --bench rpc -- --test

echo "==> client RPC budget gate (handle API vs itemized pre-handle baseline)"
# mdtest-small and 8 KiB sequential IOR, counted in client RPCs
# (ClientStats::rpcs_issued): fails if RPCs-per-op exceeds the pinned
# budget or drops under the 2x-vs-old-protocol acceptance bound. RPC
# counts are deterministic, so this gate is noise-free even on loaded
# CI machines.
cargo test -p gkfs-integration --release --test rpc_budget

echo "==> data-plane copy-bytes gate (TCP scatter-gather replies copy zero bytes)"
# The zero-copy data plane's regression gate: over real TCP, full-data
# ReadChunks replies must report read_reply_copy_bytes == 0 (bytes go
# fd -> chunk buffer -> socket with no assembly Vec), while a sparse
# control batch proves the counter is live. Byte counts are exact, so
# this gate is noise-free like the RPC budget above.
cargo test -p gkfs-integration --release --test copy_gate

echo "==> kvstore release stress (optimized timing: stalls, group commit, crash recovery)"
# The LSM concurrency tests (background flush races, write stalls,
# group-commit fan-in, crash/reopen proptests) depend on real timing
# and thread interleaving; debug-mode runs are too slow to exercise
# the contended paths, so run the kvstore suite again in release.
cargo test -p gkfs-kvstore --release -q

echo "==> chaos suite, release (seeded fault injection under workloads)"
# Deterministic chaos: mdtest/smallfile-shaped workloads under seeded
# drop/delay/duplicate/corrupt/reset injection, plus a TCP proxy with
# mid-workload connection severing. Seeds are fixed in
# tests/tests/chaos.rs, so a red run reproduces exactly. Release mode:
# the suite is timeout-bound and debug-mode handler overhead distorts
# the deadline-bound assertions.
cargo test -p gkfs-integration --release --test chaos -- --test-threads=2

echo "==> parallel-storage stress, release (clients x chunks x chaos seeds)"
# The chunk task engine + fd-cached storage under concurrent striped
# I/O from many mounts, against disk-backed daemons. The chaos variant
# is --ignored in debug runs: only release timing actually contends
# the fd cache and the per-chunk task pool.
cargo test -p gkfs-integration --release --test parallel_storage -- --include-ignored --test-threads=2

echo "ci: all green"
