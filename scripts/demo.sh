#!/usr/bin/env bash
# Multi-process GekkoFS demo: launch three gkfs-daemon processes (as a
# job script would on three nodes), collect the hosts file, and drive
# the namespace with gkfs-cli.
#
# Usage:  scripts/demo.sh            (builds release binaries first)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p gkfs-daemon -p gekkofs >/dev/null
DAEMON=target/release/gkfs-daemon
CLI=target/release/gkfs-cli

WORK=$(mktemp -d)
trap 'kill ${PIDS:-} 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== launching 3 daemons (node-local roots under $WORK) =="
PIDS=""
: > "$WORK/hosts.txt"
for n in 0 1 2; do
    mkdir -p "$WORK/node-$n"
    "$DAEMON" --listen 127.0.0.1:0 --root "$WORK/node-$n" --no-stdin \
        < /dev/null >> "$WORK/hosts.txt" &
    PIDS="$PIDS $!"
done
# Wait for all three LISTENING banners.
for _ in $(seq 1 50); do
    [ "$(wc -l < "$WORK/hosts.txt")" -ge 3 ] && break
    sleep 0.1
done
cat "$WORK/hosts.txt"

H="$WORK/hosts.txt"
echo
echo "== using the namespace =="
"$CLI" --hosts "$H" mkdir /demo
"$CLI" --hosts "$H" write /demo/hello "Hello from a temporary distributed FS"
"$CLI" --hosts "$H" ls /demo
"$CLI" --hosts "$H" stat /demo/hello
echo -n "cat: " && "$CLI" --hosts "$H" cat /demo/hello && echo

echo
echo "== a bigger file stripes across all three daemons =="
head -c 3000000 /dev/urandom > "$WORK/big.bin"
"$CLI" --hosts "$H" put "$WORK/big.bin" /demo/big.bin
"$CLI" --hosts "$H" df
"$CLI" --hosts "$H" get /demo/big.bin "$WORK/back.bin"
cmp "$WORK/big.bin" "$WORK/back.bin" && echo "round trip verified bit-exact"

echo
echo "== teardown (the FS is temporary: killing daemons releases it) =="
kill $PIDS
echo "done"
